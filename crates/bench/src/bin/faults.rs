//! Fault sweep — robustness of the 25 DDP models under a lossy fabric
//! and a mid-run node crash.
//!
//! Part 1 sweeps the fabric loss rate (each lost message is matched by an
//! equal duplication rate) and prints throughput retention relative to the
//! fault-free run of the same model, plus the raw fault counters.
//!
//! Part 2 crashes one node mid-measurement and lets it rejoin, printing
//! the crash/rejoin timestamps and how many keys the rejoining node had to
//! catch up from its peers. The crash schedule is scaled to each model's
//! fault-free run length, which part 1 already measured — the harness
//! records carry it, so no extra probe runs are needed.

use ddp_core::{ClusterConfig, DdpModel};
use ddp_harness::{print_rule, ratio, Harness, Sweep};
use ddp_sim::Duration;

const LOSS_RATES: [f64; 4] = [0.0, 0.001, 0.01, 0.05];

fn sweep_config(model: DdpModel) -> ClusterConfig {
    // Shorter than the figure harnesses: the sweep runs 125 experiments.
    let mut cfg = ClusterConfig::micro21(model);
    cfg.warmup_requests = 500;
    cfg.measured_requests = 5_000;
    cfg
}

fn main() {
    let mut harness = Harness::from_env("faults");
    println!("Fault sweep: 25 DDP models under fabric loss and a mid-run crash\n");

    // Part 1 grid: model-major, loss-minor — trial index = model_grid_index
    // * LOSS_RATES.len() + loss_index, with loss 0.0 as the per-model
    // fault-free baseline.
    let mut loss_sweep = Sweep::new();
    for model in DdpModel::all() {
        for loss in LOSS_RATES {
            let cfg = if loss > 0.0 {
                sweep_config(model).with_loss(loss)
            } else {
                sweep_config(model)
            };
            loss_sweep.push(format!("{model} p={loss}"), cfg);
        }
    }
    let loss_records = harness.run(loss_sweep);
    let stride = LOSS_RATES.len();

    println!("Part 1 - lossy fabric (drop = dup = p, throughput relative to p=0)");
    print!("{:<28}", "model");
    for p in &LOSS_RATES[1..] {
        print!(" {:>8}", format!("p={p}"));
    }
    println!(" {:>8} {:>8} {:>8} {:>8}", "drops", "dups", "rtx", "t/o");
    print_rule(7);
    for model in DdpModel::all() {
        let row = &loss_records[model.grid_index() * stride..(model.grid_index() + 1) * stride];
        let base = &row[0];
        print!("{:<28}", model.to_string());
        for lossy in &row[1..] {
            print!(
                " {:>8.2}",
                ratio(lossy.summary.throughput, base.summary.throughput)
            );
        }
        let worst = &row[stride - 1].counters;
        println!(
            " {:>8} {:>8} {:>8} {:>8}",
            worst.messages_dropped,
            worst.messages_duplicated,
            worst.retransmits,
            worst.client_timeouts
        );
    }

    // Part 2 grid: one crash trial per model. Model throughputs span >10x,
    // so a fixed crash time would fall after fast models finish and inside
    // slow models' warmup; scale it to the model's fault-free run length
    // from the part-1 baseline record instead.
    let mut crash_sweep = Sweep::new();
    for model in DdpModel::all() {
        let run_ns = loss_records[model.grid_index() * stride].counters.run_ns() as f64;
        let at = Duration::from_nanos((run_ns * 0.40) as u64);
        let down_for = Duration::from_nanos((run_ns * 0.25) as u64);
        crash_sweep.push(
            format!("{model} crash"),
            sweep_config(model)
                .with_loss(0.01)
                .with_crash(2, at, down_for),
        );
    }
    let crash_records = harness.run(crash_sweep);

    println!("\nPart 2 - mid-run crash of node 2 under 1% loss");
    println!("(crash at 40% of the model's fault-free run, down for 25% of it)");
    println!(
        "{:<28} {:>8} {:>8} {:>8} {:>8} {:>8} {:>8}",
        "model", "thr", "rtx", "t/o", "lease", "catchup", "down(us)"
    );
    print_rule(6);
    for model in DdpModel::all() {
        let record = &crash_records[model.grid_index()];
        let c = &record.counters;
        // One scheduled crash -> exactly one (node, time) pair each.
        let downtime_ns: u64 = c
            .crashes
            .iter()
            .zip(&c.rejoins)
            .map(|(&(n, down), &(m, up))| {
                assert_eq!(n, m, "crash/rejoin traces must pair up");
                up.saturating_sub(down)
            })
            .sum();
        println!(
            "{:<28} {:>8.2e} {:>8} {:>8} {:>8} {:>8} {:>8.1}",
            model.to_string(),
            record.summary.throughput,
            c.retransmits,
            c.client_timeouts,
            c.transient_expirations,
            c.catchup_keys,
            downtime_ns as f64 / 1_000.0,
        );
    }
    println!(
        "\ntakeaway: ACK-round models (Lin/RdEnf/Txn) absorb loss via retransmission;\n\
         UPD-based models (Causal/Eventual) shed it as staleness instead, so their\n\
         throughput barely moves. A crashed node costs its share of capacity while\n\
         down and a bounded catch-up on rejoin."
    );
    harness.finish();
}
