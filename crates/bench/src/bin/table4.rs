//! Table 4 — qualitative comparison of ten representative DDP models.
//!
//! Every attribute is derived from the model semantics by
//! [`ddp_core::ModelTraits::derive`]; the unit tests in `ddp-core` assert
//! the derivation matches the paper's rows exactly. This binary prints the
//! table (and, with `--json PATH`, emits each derived row as a JSON-lines
//! record — no simulations run here).

use ddp_core::{Level, ModelTraits};
use ddp_harness::{Harness, JsonObject};

fn arrow(level: Level) -> &'static str {
    match level {
        Level::High => "high",
        Level::Medium => "med",
        Level::Low => "low",
    }
}

fn mark(b: bool) -> &'static str {
    if b {
        "yes"
    } else {
        "no"
    }
}

fn row_json(index: usize, row: &ModelTraits) -> String {
    let mut o = JsonObject::new();
    o.u64("index", index as u64);
    o.str("label", &row.model.to_string());
    o.str("consistency", &row.model.consistency.to_string());
    o.str("persistency", &row.model.persistency.to_string());
    o.str("durability", arrow(row.durability));
    o.bool("writes_optimized", row.writes_optimized);
    o.bool("reads_optimized", row.reads_optimized);
    o.str("traffic", arrow(row.traffic));
    o.str("performance", arrow(row.performance));
    o.bool("monotonic_reads", row.monotonic_reads);
    o.bool("non_stale_reads", row.non_stale_reads);
    o.str("intuitiveness", arrow(row.intuitiveness));
    o.str("programmability", arrow(row.programmability));
    o.str("implementability", arrow(row.implementability));
    o.finish()
}

fn main() {
    let mut harness = Harness::from_env("table4");
    println!("Table 4: comparing different DDP models (derived from model semantics)\n");
    println!(
        "{:<34} {:>5} | {:>3} {:>3} {:>5} {:>5} | {:>5} {:>5} {:>5} | {:>5} {:>5}",
        "Model", "Dura", "Wr", "Rd", "Traf", "Perf", "Monot", "NonSt", "Intui", "Progr", "Imple"
    );
    println!("{}", "-".repeat(100));
    for (i, row) in ModelTraits::table4().iter().enumerate() {
        println!(
            "{:<34} {:>5} | {:>3} {:>3} {:>5} {:>5} | {:>5} {:>5} {:>5} | {:>5} {:>5}",
            row.model.to_string(),
            arrow(row.durability),
            mark(row.writes_optimized),
            mark(row.reads_optimized),
            arrow(row.traffic),
            arrow(row.performance),
            mark(row.monotonic_reads),
            mark(row.non_stale_reads),
            arrow(row.intuitiveness),
            arrow(row.programmability),
            arrow(row.implementability),
        );
        harness.emit_json_line(&row_json(i, row));
    }
    println!("\ncolumns: durability | writes/reads optimized, traffic, overall performance |");
    println!("         monotonic reads, non-stale reads, intuitiveness | programmability, implementability");
    harness.finish();
}
