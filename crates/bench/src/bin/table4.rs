//! Table 4 — qualitative comparison of ten representative DDP models.
//!
//! Every attribute is derived from the model semantics by
//! [`ddp_core::ModelTraits::derive`]; the unit tests in `ddp-core` assert
//! the derivation matches the paper's rows exactly. This binary prints the
//! table.

use ddp_core::{Level, ModelTraits};

fn arrow(level: Level) -> &'static str {
    match level {
        Level::High => "high",
        Level::Medium => "med",
        Level::Low => "low",
    }
}

fn mark(b: bool) -> &'static str {
    if b {
        "yes"
    } else {
        "no"
    }
}

fn main() {
    println!("Table 4: comparing different DDP models (derived from model semantics)\n");
    println!(
        "{:<34} {:>5} | {:>3} {:>3} {:>5} {:>5} | {:>5} {:>5} {:>5} | {:>5} {:>5}",
        "Model", "Dura", "Wr", "Rd", "Traf", "Perf", "Monot", "NonSt", "Intui", "Progr", "Imple"
    );
    println!("{}", "-".repeat(100));
    for row in ModelTraits::table4() {
        println!(
            "{:<34} {:>5} | {:>3} {:>3} {:>5} {:>5} | {:>5} {:>5} {:>5} | {:>5} {:>5}",
            row.model.to_string(),
            arrow(row.durability),
            mark(row.writes_optimized),
            mark(row.reads_optimized),
            arrow(row.traffic),
            arrow(row.performance),
            mark(row.monotonic_reads),
            mark(row.non_stale_reads),
            arrow(row.intuitiveness),
            arrow(row.programmability),
            arrow(row.implementability),
        );
    }
    println!("\ncolumns: durability | writes/reads optimized, traffic, overall performance |");
    println!("         monotonic reads, non-stale reads, intuitiveness | programmability, implementability");
}
