//! Figure 8 — sensitivity to the NIC-to-NIC round-trip latency
//! (0.5 µs / 1 µs / 2 µs).
//!
//! Linearizable and Causal consistency with all five persistency models;
//! normalized to `<Linearizable, Synchronous>` at 1 µs.

use ddp_bench::{figure_config, measure, print_row, print_rule};
use ddp_core::{Consistency, DdpModel, Persistency};
use ddp_sim::Duration;

fn main() {
    println!("Figure 8: throughput sensitivity to NIC-to-NIC round-trip latency");
    println!("(normalized to <Linearizable, Synchronous> at 1us)\n");

    let base = measure(figure_config(DdpModel::baseline())).throughput;

    print!("{:<28}", "");
    for p in Persistency::ALL {
        print!(" {:>8}", short(p));
    }
    println!();
    for rtt_ns in [500u64, 1_000, 2_000] {
        println!("--- RTT {:.1} us ---", rtt_ns as f64 / 1_000.0);
        for c in [Consistency::Linearizable, Consistency::Causal] {
            let values: Vec<f64> = Persistency::ALL
                .iter()
                .map(|&p| {
                    let cfg = figure_config(DdpModel::new(c, p))
                        .with_round_trip(Duration::from_nanos(rtt_ns));
                    measure(cfg).throughput / base
                })
                .collect();
            print_row(&c.to_string(), &values);
        }
    }
    print_rule(5);
    println!("paper anchors: <Lin,Sync> loses ~12% going 1us -> 2us;");
    println!("               Causal models are barely affected (updates travel in the background).");
}

fn short(p: Persistency) -> &'static str {
    match p {
        Persistency::Strict => "Strict",
        Persistency::Synchronous => "Sync",
        Persistency::ReadEnforced => "RdEnf",
        Persistency::Scope => "Scope",
        Persistency::Eventual => "Evntl",
    }
}
