//! Figure 8 — sensitivity to the NIC-to-NIC round-trip latency
//! (0.5 µs / 1 µs / 2 µs).
//!
//! Linearizable and Causal consistency with all five persistency models;
//! normalized to `<Linearizable, Synchronous>` at 1 µs.

use ddp_core::{Consistency, DdpModel, Persistency};
use ddp_harness::{figure_config, print_row, print_rule, ratio, Harness, Sweep};
use ddp_sim::Duration;

const RTT_NS: [u64; 3] = [500, 1_000, 2_000];
const CONSISTENCY: [Consistency; 2] = [Consistency::Linearizable, Consistency::Causal];

/// Trial index of `(rtt, consistency, persistency)` in the sweep grid.
fn idx(rtt_i: usize, cons_i: usize, p: Persistency) -> usize {
    (rtt_i * CONSISTENCY.len() + cons_i) * Persistency::ALL.len() + p.index()
}

fn main() {
    let mut harness = Harness::from_env("fig8");
    println!("Figure 8: throughput sensitivity to NIC-to-NIC round-trip latency");
    println!("(normalized to <Linearizable, Synchronous> at 1us)\n");

    let mut sweep = Sweep::new();
    for rtt_ns in RTT_NS {
        for c in CONSISTENCY {
            for p in Persistency::ALL {
                let model = DdpModel::new(c, p);
                sweep.push(
                    format!("{model} rtt={rtt_ns}ns"),
                    figure_config(model).with_round_trip(Duration::from_nanos(rtt_ns)),
                );
            }
        }
    }
    let records = harness.run(sweep);
    // The baseline <Lin, Sync> at the paper's 1us RTT is part of the grid.
    let base = records[idx(1, 0, Persistency::Synchronous)]
        .summary
        .throughput;

    print!("{:<28}", "");
    for p in Persistency::ALL {
        print!(" {:>8}", short(p));
    }
    println!();
    for (ri, rtt_ns) in RTT_NS.into_iter().enumerate() {
        println!("--- RTT {:.1} us ---", rtt_ns as f64 / 1_000.0);
        for (gi, c) in CONSISTENCY.into_iter().enumerate() {
            let values: Vec<f64> = Persistency::ALL
                .iter()
                .map(|&p| ratio(records[idx(ri, gi, p)].summary.throughput, base))
                .collect();
            print_row(&c.to_string(), &values);
        }
    }
    print_rule(5);
    println!("paper anchors: <Lin,Sync> loses ~12% going 1us -> 2us;");
    println!(
        "               Causal models are barely affected (updates travel in the background)."
    );
    harness.finish();
}

fn short(p: Persistency) -> &'static str {
    match p {
        Persistency::Strict => "Strict",
        Persistency::Synchronous => "Sync",
        Persistency::ReadEnforced => "RdEnf",
        Persistency::Scope => "Scope",
        Persistency::Eventual => "Evntl",
    }
}
