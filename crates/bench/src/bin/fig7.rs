//! Figure 7 — sensitivity to the number of clients (10 / 100 / 150).
//!
//! As in the paper, shows Linearizable and Causal consistency with all five
//! persistency models; every bar is normalized to
//! `<Linearizable, Synchronous>` at 100 clients.

use ddp_core::{Consistency, DdpModel, Persistency};
use ddp_harness::{figure_config, print_row, print_rule, ratio, Harness, Sweep};

const CLIENTS: [u32; 3] = [10, 100, 150];
const CONSISTENCY: [Consistency; 2] = [Consistency::Linearizable, Consistency::Causal];

/// Trial index of `(clients, consistency, persistency)` in the sweep grid.
fn idx(clients_i: usize, cons_i: usize, p: Persistency) -> usize {
    (clients_i * CONSISTENCY.len() + cons_i) * Persistency::ALL.len() + p.index()
}

fn main() {
    let mut harness = Harness::from_env("fig7");
    println!("Figure 7: throughput sensitivity to the number of clients");
    println!("(normalized to <Linearizable, Synchronous> at 100 clients)\n");

    let mut sweep = Sweep::new();
    for clients in CLIENTS {
        for c in CONSISTENCY {
            for p in Persistency::ALL {
                let model = DdpModel::new(c, p);
                sweep.push(
                    format!("{model} clients={clients}"),
                    figure_config(model).with_clients(clients),
                );
            }
        }
    }
    let records = harness.run(sweep);
    // The baseline <Lin, Sync> at 100 clients is part of the grid.
    let base = records[idx(1, 0, Persistency::Synchronous)]
        .summary
        .throughput;

    print!("{:<28}", "");
    for p in Persistency::ALL {
        print!(" {:>8}", short(p));
    }
    println!();
    for (ci, clients) in CLIENTS.into_iter().enumerate() {
        println!("--- {clients} clients ---");
        for (gi, c) in CONSISTENCY.into_iter().enumerate() {
            let values: Vec<f64> = Persistency::ALL
                .iter()
                .map(|&p| ratio(records[idx(ci, gi, p)].summary.throughput, base))
                .collect();
            print_row(&c.to_string(), &values);
        }
    }
    print_rule(5);
    println!("paper anchors: <Lin,Sync> gains ~2.2x going 100 -> 10 clients;");
    println!("               <Causal,Sync> and <Causal,Eventual> barely move.");
    harness.finish();
}

fn short(p: Persistency) -> &'static str {
    match p {
        Persistency::Strict => "Strict",
        Persistency::Synchronous => "Sync",
        Persistency::ReadEnforced => "RdEnf",
        Persistency::Scope => "Scope",
        Persistency::Eventual => "Evntl",
    }
}
