//! Figure 7 — sensitivity to the number of clients (10 / 100 / 150).
//!
//! As in the paper, shows Linearizable and Causal consistency with all five
//! persistency models; every bar is normalized to
//! `<Linearizable, Synchronous>` at 100 clients.

use ddp_bench::{figure_config, measure, print_row, print_rule};
use ddp_core::{Consistency, DdpModel, Persistency};

fn main() {
    println!("Figure 7: throughput sensitivity to the number of clients");
    println!("(normalized to <Linearizable, Synchronous> at 100 clients)\n");

    let base = measure(figure_config(DdpModel::baseline()).with_clients(100)).throughput;

    print!("{:<28}", "");
    for p in Persistency::ALL {
        print!(" {:>8}", short(p));
    }
    println!();
    for clients in [10u32, 100, 150] {
        println!("--- {clients} clients ---");
        for c in [Consistency::Linearizable, Consistency::Causal] {
            let values: Vec<f64> = Persistency::ALL
                .iter()
                .map(|&p| {
                    let cfg = figure_config(DdpModel::new(c, p)).with_clients(clients);
                    measure(cfg).throughput / base
                })
                .collect();
            print_row(&c.to_string(), &values);
        }
    }
    print_rule(5);
    println!("paper anchors: <Lin,Sync> gains ~2.2x going 100 -> 10 clients;");
    println!("               <Causal,Sync> and <Causal,Eventual> barely move.");
}

fn short(p: Persistency) -> &'static str {
    match p {
        Persistency::Strict => "Strict",
        Persistency::Synchronous => "Sync",
        Persistency::ReadEnforced => "RdEnf",
        Persistency::Scope => "Scope",
        Persistency::Eventual => "Evntl",
    }
}
