//! A transfer-heavy "banking" workload under Transactional consistency.
//!
//! ```text
//! cargo run -p ddp-examples --release --bin banking
//! ```
//!
//! Spanner-class databases need transactional guarantees (paper §9). This
//! example runs the Transactional consistency model with four persistency
//! bindings and reports commit/conflict behaviour — including the paper's
//! observation that Read-Enforced persistency is a poor partner for
//! transactions because reads stall on persists.

use ddp_core::{ClusterConfig, Consistency, DdpModel, Persistency, Simulation};
use ddp_workload::WorkloadSpec;

fn main() {
    println!("Banking transfers under Transactional consistency\n");
    println!(
        "{:<36} {:>9} {:>10} {:>10} {:>12}",
        "model", "Mreq/s", "commits", "conflicts", "p95 write us"
    );
    for p in [
        Persistency::Synchronous,
        Persistency::ReadEnforced,
        Persistency::Scope,
        Persistency::Eventual,
    ] {
        let model = DdpModel::new(Consistency::Transactional, p);
        let mut cfg = ClusterConfig::micro21(model);
        // Transfers: read-modify-write pairs over accounts.
        cfg.workload = WorkloadSpec {
            name: "transfers",
            read_ratio: 0.5,
            key_space: 100_000,
            zipf_theta: Some(0.9),
            value_bytes: 128,
        };
        cfg.warmup_requests = 1_000;
        cfg.measured_requests = 10_000;
        let mut sim = Simulation::new(cfg);
        let report = sim.run();
        let stats = sim.cluster().stats();
        println!(
            "{:<36} {:>9.2} {:>10} {:>10} {:>12.1}",
            model.to_string(),
            report.summary.throughput / 1e6,
            stats.txns_committed,
            stats.txns_conflicted,
            report.summary.p95_write_ns / 1e3,
        );
    }
    println!();
    println!("Per the paper (Section 9): pair transactions with Scope or Eventual");
    println!("persistency; Read-Enforced persistency makes transactional reads stall.");
}
