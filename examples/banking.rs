//! A transfer-heavy "banking" workload under Transactional consistency.
//!
//! ```text
//! cargo run -p ddp-examples --release --bin banking
//! ```
//!
//! Spanner-class databases need transactional guarantees (paper §9). This
//! example runs the Transactional consistency model with four persistency
//! bindings and reports commit/conflict behaviour — including the paper's
//! observation that Read-Enforced persistency is a poor partner for
//! transactions because reads stall on persists. The four bindings run
//! concurrently through the sweep harness; the commit/conflict counters
//! come straight off the run records.

use ddp_core::{ClusterConfig, Consistency, DdpModel, Persistency};
use ddp_harness::{default_threads, run_sweep_named, Sweep};
use ddp_workload::WorkloadSpec;

fn main() {
    println!("Banking transfers under Transactional consistency\n");

    let mut sweep = Sweep::new();
    for p in [
        Persistency::Synchronous,
        Persistency::ReadEnforced,
        Persistency::Scope,
        Persistency::Eventual,
    ] {
        let model = DdpModel::new(Consistency::Transactional, p);
        let mut cfg = ClusterConfig::micro21(model);
        // Transfers: read-modify-write pairs over accounts.
        cfg.workload = WorkloadSpec {
            name: "transfers",
            read_ratio: 0.5,
            key_space: 100_000,
            zipf_theta: Some(0.9),
            value_bytes: 128,
            shard: None,
        };
        cfg.warmup_requests = 1_000;
        cfg.measured_requests = 10_000;
        sweep.push(model.to_string(), cfg);
    }
    let records = run_sweep_named("banking", sweep, default_threads());

    println!(
        "{:<36} {:>9} {:>10} {:>10} {:>12}",
        "model", "Mreq/s", "commits", "conflicts", "p95 write us"
    );
    for r in &records {
        println!(
            "{:<36} {:>9.2} {:>10} {:>10} {:>12.1}",
            r.model.to_string(),
            r.summary.throughput / 1e6,
            r.counters.txns_committed,
            r.counters.txns_conflicted,
            r.summary.p95_write_ns / 1e3,
        );
    }
    println!();
    println!("Per the paper (Section 9): pair transactions with Scope or Eventual");
    println!("persistency; Read-Enforced persistency makes transactional reads stall.");
}
