//! Crash a cluster, recover it, and see what each DDP model lost.
//!
//! ```text
//! cargo run -p ddp-examples --release --bin crash_recovery
//! ```
//!
//! The durability column of the paper's Table 4 in action: after a
//! whole-cluster volatile failure, NVM images are all that survive. Strict
//! models recover everything a client was ever told was written; relaxed
//! models lose the tail.

use ddp_core::{
    crash_snapshot, estimate_recovery, recover, ClusterConfig, Consistency, DdpModel,
    HistoryChecker, Persistency, RecoveryPolicy, Simulation,
};
use ddp_mem::MemoryParams;
use ddp_net::NetworkParams;

fn main() {
    println!("Crash and recovery across DDP models\n");
    println!(
        "{:<36} {:>14} {:>16} {:>17} {:>12}",
        "model", "durable keys", "lost ack'd wr", "recovery", "est. time"
    );
    let models = [
        DdpModel::new(Consistency::Linearizable, Persistency::Synchronous),
        DdpModel::new(Consistency::Linearizable, Persistency::Scope),
        DdpModel::new(Consistency::ReadEnforced, Persistency::Synchronous),
        DdpModel::new(Consistency::Causal, Persistency::Synchronous),
        DdpModel::new(Consistency::Eventual, Persistency::Eventual),
    ];
    for model in models {
        let mut cfg = ClusterConfig::micro21(model).with_observations();
        cfg.warmup_requests = 0;
        cfg.measured_requests = 5_000;
        let mut sim = Simulation::new(cfg);
        sim.run();

        // Lights out: volatile state gone, NVM survives.
        let snapshot = crash_snapshot(sim.cluster());
        let policy = if model.persistency == Persistency::Eventual {
            // Weak models need the advanced, voting-based recovery (§9).
            RecoveryPolicy::MajorityVote
        } else {
            RecoveryPolicy::NewestAvailable
        };
        let recovered = recover(&snapshot, policy);

        let checker = HistoryChecker::new(sim.cluster().observations().clone());
        let non_stale = checker.non_stale_after_recovery(&recovered);
        let est = estimate_recovery(
            &snapshot,
            policy,
            &MemoryParams::micro21(),
            &NetworkParams::micro21(),
        );
        println!(
            "{:<36} {:>14} {:>16} {:>17} {:>12}",
            model.to_string(),
            recovered.versions.len(),
            non_stale.violations.len(),
            format!("{policy:?}"),
            format!("{}", est.total()),
        );
    }
    println!();
    println!("'lost ack'd wr': keys whose newest client-acknowledged write did not");
    println!("survive the crash - zero for the strict bindings, nonzero for relaxed ones.");

    mid_run_crash();
}

/// Part 2: the failure doesn't wait for the run to end. One node dies
/// mid-measurement, its NVM image survives, and it rejoins later — catching
/// up from the durable floor plus whatever its live peers accepted while it
/// was gone. The cluster keeps serving on the surviving quorum throughout.
fn mid_run_crash() {
    use ddp_sim::Duration;

    println!("\nMid-run crash and rejoin (node 2, 1% message loss)\n");
    println!(
        "{:<36} {:>10} {:>10} {:>10} {:>10} {:>10}",
        "model", "crash(us)", "rejoin(us)", "catchup", "rtx", "timeouts"
    );
    let models = [
        DdpModel::new(Consistency::Linearizable, Persistency::Strict),
        DdpModel::new(Consistency::Transactional, Persistency::Synchronous),
        DdpModel::new(Consistency::Causal, Persistency::Synchronous),
    ];
    for model in models {
        // Scale the outage to the model's own run length so the crash and
        // the rejoin both land inside the measured window.
        let mut cfg = ClusterConfig::micro21(model);
        cfg.warmup_requests = 500;
        cfg.measured_requests = 10_000;
        let mut probe = Simulation::new(cfg.clone());
        probe.run();
        let pst = probe.cluster().stats();
        let run_ns = (pst.window_start.as_nanos() + pst.measured_time.as_nanos()) as f64;
        let at = Duration::from_nanos((run_ns * 0.40) as u64);
        let down_for = Duration::from_nanos((run_ns * 0.25) as u64);

        let mut sim = Simulation::new(cfg.with_loss(0.01).with_crash(2, at, down_for));
        let summary = sim.run().summary;
        let st = sim.cluster().stats();
        let (_, crashed_at) = st.crashes[0];
        let (_, rejoined_at) = st.rejoins[0];
        println!(
            "{:<36} {:>10.1} {:>10.1} {:>10} {:>10} {:>10}",
            model.to_string(),
            crashed_at.as_nanos() as f64 / 1_000.0,
            rejoined_at.as_nanos() as f64 / 1_000.0,
            st.catchup_keys,
            summary.retransmits,
            summary.client_timeouts,
        );
    }
    println!();
    println!("'catchup': keys the rejoining node pulled from its own NVM image and");
    println!("its peers to get back in sync before serving again.");
}
