//! Crash a cluster, recover it, and see what each DDP model lost.
//!
//! ```text
//! cargo run -p ddp-examples --release --bin crash_recovery
//! ```
//!
//! The durability column of the paper's Table 4 in action: after a
//! whole-cluster volatile failure, NVM images are all that survive. Strict
//! models recover everything a client was ever told was written; relaxed
//! models lose the tail.

use ddp_core::{
    crash_snapshot, estimate_recovery, recover, ClusterConfig, Consistency, DdpModel,
    HistoryChecker, Persistency, RecoveryPolicy, Simulation,
};
use ddp_mem::MemoryParams;
use ddp_net::NetworkParams;

fn main() {
    println!("Crash and recovery across DDP models\n");
    println!(
        "{:<36} {:>14} {:>16} {:>17} {:>12}",
        "model", "durable keys", "lost ack'd wr", "recovery", "est. time"
    );
    let models = [
        DdpModel::new(Consistency::Linearizable, Persistency::Synchronous),
        DdpModel::new(Consistency::Linearizable, Persistency::Scope),
        DdpModel::new(Consistency::ReadEnforced, Persistency::Synchronous),
        DdpModel::new(Consistency::Causal, Persistency::Synchronous),
        DdpModel::new(Consistency::Eventual, Persistency::Eventual),
    ];
    for model in models {
        let mut cfg = ClusterConfig::micro21(model).with_observations();
        cfg.warmup_requests = 0;
        cfg.measured_requests = 5_000;
        let mut sim = Simulation::new(cfg);
        sim.run();

        // Lights out: volatile state gone, NVM survives.
        let snapshot = crash_snapshot(sim.cluster());
        let policy = if model.persistency == Persistency::Eventual {
            // Weak models need the advanced, voting-based recovery (§9).
            RecoveryPolicy::MajorityVote
        } else {
            RecoveryPolicy::NewestAvailable
        };
        let recovered = recover(&snapshot, policy);

        let checker = HistoryChecker::new(sim.cluster().observations().clone());
        let non_stale = checker.non_stale_after_recovery(&recovered);
        let est = estimate_recovery(
            &snapshot,
            policy,
            &MemoryParams::micro21(),
            &NetworkParams::micro21(),
        );
        println!(
            "{:<36} {:>14} {:>16} {:>17} {:>12}",
            model.to_string(),
            recovered.versions.len(),
            non_stale.violations.len(),
            format!("{policy:?}"),
            format!("{}", est.total()),
        );
    }
    println!();
    println!("'lost ack'd wr': keys whose newest client-acknowledged write did not");
    println!("survive the crash - zero for the strict bindings, nonzero for relaxed ones.");
}
