//! A social-network timeline built on `<Causal, Synchronous>`.
//!
//! ```text
//! cargo run -p ddp-examples --release --bin social_network
//! ```
//!
//! Photo-sharing and news-reader services pick Causal consistency for its
//! combination of performance and sensible semantics (paper §9): if Alice
//! posts and Bob replies, nobody ever sees the reply without the post.
//! This example compares causal and eventual consistency on a
//! comment-thread-like workload and verifies the session guarantees with
//! the history checker.

use ddp_core::{ClusterConfig, Consistency, DdpModel, HistoryChecker, Persistency, Simulation};
use ddp_workload::WorkloadSpec;

fn run(model: DdpModel) -> (f64, bool, f64) {
    let mut cfg = ClusterConfig::micro21(model).with_observations();
    // A busy comment thread: small hot key set, read-mostly.
    cfg.workload = WorkloadSpec {
        name: "timeline",
        read_ratio: 0.7,
        key_space: 10_000,
        zipf_theta: Some(0.99),
        value_bytes: 512,
        shard: None,
    };
    cfg.warmup_requests = 1_000;
    cfg.measured_requests = 10_000;
    let mut sim = Simulation::new(cfg);
    let report = sim.run();
    let checker = HistoryChecker::new(sim.cluster().observations().clone());
    (
        report.summary.throughput,
        checker.monotonic_reads().holds,
        checker.fresh_read_fraction(),
    )
}

fn main() {
    println!("Social-network timeline: Causal vs Eventual consistency\n");
    let models = [
        DdpModel::new(Consistency::Causal, Persistency::Synchronous),
        DdpModel::new(Consistency::Eventual, Persistency::Synchronous),
        DdpModel::new(Consistency::Linearizable, Persistency::Synchronous),
    ];
    println!(
        "{:<32} {:>12} {:>18} {:>12}",
        "model", "Mreq/s", "monotonic reads?", "fresh reads"
    );
    for model in models {
        let (thr, monotonic, fresh) = run(model);
        println!(
            "{:<32} {:>12.2} {:>18} {:>11.1}%",
            model.to_string(),
            thr / 1e6,
            if monotonic { "yes" } else { "NO" },
            fresh * 100.0
        );
    }
    println!();
    println!("Causal keeps timeline reads monotonic at near-Eventual throughput;");
    println!("Eventual consistency gives up the reply-after-post guarantee.");
}
