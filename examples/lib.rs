//! Shared helpers for the DDP examples (currently none; each example
//! is self-contained).

#![forbid(unsafe_code)]
