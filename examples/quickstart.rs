//! Quickstart: run one DDP experiment and print its headline numbers.
//!
//! ```text
//! cargo run -p ddp-examples --release --bin quickstart
//! ```
//!
//! A Distributed Data Persistency (DDP) model binds a data *consistency*
//! model (when replicas may serve an update) with a memory *persistency*
//! model (when the update survives a crash). This example runs the paper's
//! recommended general-purpose binding, `<Causal, Synchronous>`, against
//! the strictest one, `<Linearizable, Synchronous>`, on the simulated
//! 5-server RDMA + NVM cluster — both trials through the parallel sweep
//! harness, one per core.

use ddp_core::{ClusterConfig, Consistency, DdpModel, Persistency};
use ddp_harness::{default_threads, run_sweep_named, Sweep};

fn main() {
    println!("DDP quickstart: two models on the paper's 5-server cluster\n");

    let mut sweep = Sweep::new();
    for model in [
        DdpModel::new(Consistency::Linearizable, Persistency::Synchronous),
        DdpModel::new(Consistency::Causal, Persistency::Synchronous),
    ] {
        // ClusterConfig::micro21 reproduces the paper's Table 5 setup:
        // 5 servers x 20 cores, 100 closed-loop YCSB-A clients, 1us RTT
        // RDMA, NVM with 400ns writes.
        sweep.push(model.to_string(), ClusterConfig::micro21(model));
    }
    let records = run_sweep_named("quickstart", sweep, default_threads());

    for r in &records {
        let model = r.model;
        let s = &r.summary;
        println!("{model}");
        println!(
            "  visibility point : {}",
            model.consistency.visibility_point()
        );
        println!(
            "  durability point : {}",
            model.persistency.durability_point()
        );
        println!("  throughput       : {:.2} M req/s", s.throughput / 1e6);
        println!("  mean read        : {:.2} us", s.mean_read_ns / 1e3);
        println!("  mean write       : {:.2} us", s.mean_write_ns / 1e3);
        println!("  p95 write        : {:.2} us", s.p95_write_ns / 1e3);
        println!();
    }

    println!("Causal consistency with Synchronous persistency keeps reads and");
    println!("writes stall-free while every read is recoverable - the paper's");
    println!("sweet spot for a broad class of applications (Section 9).");
}
