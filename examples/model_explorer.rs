//! Explore any of the 25 DDP models from the command line.
//!
//! ```text
//! cargo run -p ddp-examples --release --bin model_explorer -- causal sync
//! cargo run -p ddp-examples --release --bin model_explorer -- lin re --clients 150
//! ```
//!
//! Prints the model's Table 2 semantics, its derived Table 4 traits, and a
//! measured performance summary.

use ddp_core::{ClusterConfig, Consistency, DdpModel, ModelTraits, Persistency};
use ddp_harness::{run_sweep_named, Sweep};

fn parse_consistency(s: &str) -> Option<Consistency> {
    Some(match s.to_ascii_lowercase().as_str() {
        "lin" | "linearizable" => Consistency::Linearizable,
        "re" | "read-enforced" | "readenforced" => Consistency::ReadEnforced,
        "txn" | "transactional" | "xactional" => Consistency::Transactional,
        "causal" => Consistency::Causal,
        "ev" | "eventual" => Consistency::Eventual,
        _ => return None,
    })
}

fn parse_persistency(s: &str) -> Option<Persistency> {
    Some(match s.to_ascii_lowercase().as_str() {
        "strict" => Persistency::Strict,
        "sync" | "synchronous" => Persistency::Synchronous,
        "re" | "read-enforced" | "readenforced" => Persistency::ReadEnforced,
        "scope" => Persistency::Scope,
        "ev" | "eventual" => Persistency::Eventual,
        _ => return None,
    })
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let usage = "usage: model_explorer <consistency> <persistency> [--clients N]\n\
                 consistency: lin | re | txn | causal | ev\n\
                 persistency: strict | sync | re | scope | ev";
    let (Some(c), Some(p)) = (
        args.first().and_then(|s| parse_consistency(s)),
        args.get(1).and_then(|s| parse_persistency(s)),
    ) else {
        eprintln!("{usage}");
        // Default demo when run without arguments.
        explore(
            DdpModel::new(Consistency::Causal, Persistency::Synchronous),
            100,
        );
        return;
    };
    let clients = args
        .iter()
        .position(|a| a == "--clients")
        .and_then(|i| args.get(i + 1))
        .and_then(|v| v.parse().ok())
        .unwrap_or(100);
    explore(DdpModel::new(c, p), clients);
}

fn explore(model: DdpModel, clients: u32) {
    println!("\n=== {model} ===\n");
    println!("Table 2 semantics:");
    println!("  VP: {}", model.consistency.visibility_point());
    println!("  DP: {}", model.persistency.durability_point());

    let t = ModelTraits::derive(model);
    println!("\nDerived Table 4 traits:");
    println!("  durability       : {}", t.durability);
    println!("  writes optimized : {}", t.writes_optimized);
    println!("  reads optimized  : {}", t.reads_optimized);
    println!("  monotonic reads  : {}", t.monotonic_reads);
    println!("  non-stale reads  : {}", t.non_stale_reads);
    println!("  intuitiveness    : {}", t.intuitiveness);
    println!("  programmability  : {}", t.programmability);
    println!("  implementability : {}", t.implementability);

    println!("\nMeasured ({clients} clients, YCSB-A):");
    let records = run_sweep_named(
        "model_explorer",
        Sweep::new().trial(
            model.to_string(),
            ClusterConfig::micro21(model).with_clients(clients),
        ),
        1,
    );
    let s = &records[0].summary;
    println!("  throughput : {:.2} M req/s", s.throughput / 1e6);
    println!(
        "  mean read  : {:.2} us   (p95 {:.2} us)",
        s.mean_read_ns / 1e3,
        s.p95_read_ns / 1e3
    );
    println!(
        "  mean write : {:.2} us   (p95 {:.2} us)",
        s.mean_write_ns / 1e3,
        s.p95_write_ns / 1e3
    );
    println!("  traffic    : {:.0} B/request", s.traffic_bytes_per_req);
}
