//! Sharded-fleet integration tests: the degenerate single-shard case
//! against the solo simulation over the whole 25-model grid, executor
//! byte-identity at different thread counts, per-shard open-loop
//! conservation under faults, weak-scaling sanity, and config validation.

use ddp_core::{
    ClusterConfig, Consistency, DdpModel, FleetConfig, FleetSimulation, OpenLoopPlan, Persistency,
    Placement, Simulation,
};
use ddp_harness::{run_fleet_sweep, FleetSweep};
use ddp_sim::Duration;

fn small_cfg(model: DdpModel) -> ClusterConfig {
    let mut cfg = ClusterConfig::micro21(model);
    cfg.warmup_requests = 50;
    cfg.measured_requests = 600;
    cfg
}

/// `--shards 1` must be the degenerate case: over the whole 25-model grid
/// the fleet aggregate equals the solo simulation's summary field for
/// field (both sides run the same event sequence, so `PartialEq` over the
/// full summary is exact, not approximate).
#[test]
fn one_shard_fleet_matches_solo_grid() {
    for model in DdpModel::all() {
        let solo = Simulation::new(small_cfg(model)).run().summary;
        let fleet = FleetSimulation::new(FleetConfig::new(small_cfg(model), 1)).run();
        assert_eq!(
            fleet.aggregate, solo,
            "model {model} diverged between 1-shard fleet and solo run"
        );
        assert_eq!(fleet.shards, 1);
        assert_eq!(fleet.imbalance, 1.0);
    }
}

/// Sharded sweeps honour the executor determinism contract: records over
/// the 25-model grid are bit-identical at 1 and 4 worker threads.
#[test]
fn sharded_sweeps_are_bit_identical_across_thread_counts() {
    let sweep = || {
        let mut sweep = FleetSweep::new();
        for model in DdpModel::all() {
            let mut cfg = small_cfg(model);
            cfg.warmup_requests = 20;
            cfg.measured_requests = 300;
            sweep.push(format!("{model} S=3"), FleetConfig::new(cfg, 3));
        }
        sweep
    };
    let serial = run_fleet_sweep("fleet-determinism", sweep(), 1);
    let parallel = run_fleet_sweep("fleet-determinism", sweep(), 4);
    assert_eq!(serial.len(), 25);
    for (a, b) in serial.iter().zip(&parallel) {
        assert_eq!(a, b, "trial {} diverged across thread counts", a.label);
    }
}

/// Every shard of an open-loop fleet keeps its own conservation invariant
/// (`arrivals == completed + shed + queued + retry_pending + in_flight`),
/// including under a mid-run node crash, and the fleet totals are the sum
/// of the per-shard books.
#[test]
fn per_shard_conservation_under_open_loop_arrivals_and_faults() {
    let model = DdpModel::new(Consistency::Linearizable, Persistency::Strict);
    let mut cfg = small_cfg(model)
        .with_open_loop(
            OpenLoopPlan::poisson(20_000_000.0)
                .with_queue_capacity(Some(8))
                .with_retries(2),
        )
        .with_loss(0.02)
        .with_crash(1, Duration::from_micros(30), Duration::from_micros(40));
    cfg.clients = 40;
    let shards = 4;
    let mut sim = FleetSimulation::new(FleetConfig::new(cfg, shards));
    let report = sim.run();

    let mut arrivals_total = 0;
    let mut completed_total = 0;
    for s in 0..shards {
        let acct = sim
            .shard(s)
            .open_loop_accounting()
            .expect("open-loop fleet shard must expose accounting");
        assert_eq!(
            acct.arrivals,
            acct.completed_sessions + acct.shed + acct.queued + acct.retry_pending + acct.in_flight,
            "conservation violated on shard {s}: {acct:?}"
        );
        assert!(acct.arrivals > 0, "shard {s} generated no arrivals");
        arrivals_total += acct.arrivals;
        completed_total += acct.completed_sessions;
    }
    assert!(completed_total > 0);
    assert!(arrivals_total >= completed_total);
    assert_eq!(report.shards, shards);
}

/// Weak-scaling sanity behind the `scaling` bin's acceptance criterion:
/// holding the per-shard problem size constant, aggregate throughput
/// grows monotonically from 1 to 4 shards under uniform YCSB-A.
#[test]
fn weak_scaled_uniform_fleet_grows_aggregate_throughput() {
    let run = |shards: u16| {
        let mut cfg = small_cfg(DdpModel::baseline());
        cfg.workload.zipf_theta = None;
        cfg.clients *= u32::from(shards);
        cfg.warmup_requests *= u64::from(shards);
        cfg.measured_requests *= u64::from(shards);
        FleetSimulation::new(FleetConfig::new(cfg, shards))
            .run()
            .aggregate
            .throughput
    };
    let t1 = run(1);
    let t2 = run(2);
    let t4 = run(4);
    assert!(t2 > t1 * 1.5, "2 shards {t2} vs 1 shard {t1}");
    assert!(t4 > t2 * 1.5, "4 shards {t4} vs 2 shards {t2}");
}

/// Degenerate fleet setups fail validation with a clear message instead
/// of a downstream panic.
#[test]
fn fleet_validation_rejects_degenerate_setups() {
    let base = small_cfg(DdpModel::baseline());

    let err = FleetConfig::new(base.clone(), 0).validate().unwrap_err();
    assert!(err.contains("at least one shard"), "{err}");

    let mut tiny_keys = base.clone();
    tiny_keys.workload.key_space = 4;
    let err = FleetConfig::new(tiny_keys, 8).validate().unwrap_err();
    assert!(err.contains("key space"), "{err}");

    let mut few_clients = base.clone();
    few_clients.clients = 2;
    let err = FleetConfig::new(few_clients, 8).validate().unwrap_err();
    assert!(err.contains("clients"), "{err}");

    assert!(FleetConfig::new(base.clone(), 4)
        .with_placement(Placement::Range)
        .validate()
        .is_ok());

    let mut no_keys = base;
    no_keys.workload.key_space = 0;
    let err = no_keys.validate().unwrap_err();
    assert!(err.contains("key_space"), "{err}");
}
