//! Integration tests of the LSM store tier: determinism of background
//! compaction under parallel sweeps, inertness of the compaction
//! machinery for every non-LSM backend, and the interference mechanism
//! itself (background seal/merge traffic on the NVM bank path).

use ddp_core::{
    ClusterConfig, CompactionConfig, Consistency, DdpModel, Persistency, Simulation, StoreKind,
};
use ddp_harness::{record_to_json, run_sweep, Sweep};

/// An aggressive tuning that seals and merges constantly, so the tests
/// exercise real background traffic rather than an idle memtable.
fn storm() -> CompactionConfig {
    CompactionConfig {
        memtable_entries: 16,
        fanout: 2,
        ..CompactionConfig::default()
    }
}

fn quick_grid(store: StoreKind, compaction: CompactionConfig) -> Sweep {
    Sweep::grid25(move |m| {
        let mut cfg = ClusterConfig::micro21(m)
            .quick()
            .with_store(store)
            .with_compaction(compaction);
        cfg.warmup_requests = 30;
        cfg.measured_requests = 400;
        cfg
    })
}

/// Background compaction events ride the same deterministic event queue
/// as the protocol: the 25-model grid with the LSM backend (and constant
/// seal/merge churn) must serialize byte-identically at any `--threads`.
#[test]
fn lsm_grid25_is_bit_identical_at_any_thread_count() {
    let sequential = run_sweep(quick_grid(StoreKind::Lsm, storm()), 1);
    let parallel = run_sweep(quick_grid(StoreKind::Lsm, storm()), 4);
    assert_eq!(sequential, parallel);
    let seq_json: Vec<String> = sequential.iter().map(record_to_json).collect();
    let par_json: Vec<String> = parallel.iter().map(record_to_json).collect();
    assert_eq!(seq_json, par_json);
    assert!(
        sequential.iter().any(|r| r.summary.lsm_seals > 0),
        "the storm tuning must actually generate compaction work"
    );
}

/// The compaction tier is strictly off-path for every other backend: a
/// non-LSM sweep must be byte-identical whatever the compaction tuning
/// says, and must report zero compaction activity.
#[test]
fn non_lsm_runs_are_inert_to_compaction_tuning() {
    for store in StoreKind::ALL {
        let default_cfg = run_sweep(quick_grid(store, CompactionConfig::default()), 4);
        let stormy_cfg = run_sweep(quick_grid(store, storm()), 4);
        let a: Vec<String> = default_cfg.iter().map(record_to_json).collect();
        let b: Vec<String> = stormy_cfg.iter().map(record_to_json).collect();
        assert_eq!(a, b, "{store}: compaction tuning leaked into a non-LSM run");
        for r in &default_cfg {
            assert_eq!(r.summary.lsm_seals, 0, "{store} sealed");
            assert_eq!(r.summary.lsm_merges, 0, "{store} merged");
            assert_eq!(r.summary.compaction_bytes, 0, "{store} wrote bytes");
            assert_eq!(r.summary.max_active_compactions, 0, "{store} ran merges");
        }
    }
}

/// The mechanism end to end: an LSM run under write pressure seals,
/// merges, pushes background bytes through the banked NVM device, and
/// surfaces all of it in the summary.
#[test]
fn lsm_compaction_generates_background_nvm_traffic() {
    let mut cfg = ClusterConfig::micro21(DdpModel::baseline())
        .quick()
        .with_store(StoreKind::Lsm)
        .with_compaction(storm());
    cfg.warmup_requests = 30;
    cfg.measured_requests = 1_000;
    let mut sim = Simulation::new(cfg);
    let report = sim.run();
    let s = &report.summary;
    assert!(s.lsm_seals > 0, "no seals under write pressure");
    assert!(s.lsm_merges > 0, "fanout 2 must cascade merges");
    assert!(s.compaction_bytes > 0, "seal/merge work must cost bytes");
    assert!(s.max_active_compactions >= 1);
    assert!(s.mean_active_compactions >= 0.0);
    // Every sealed or merged entry prices the configured byte cost, so the
    // byte counter is a multiple of entry_bytes.
    assert_eq!(s.compaction_bytes % storm().entry_bytes, 0);
    assert!(s.throughput > 0.0);
}

/// Crashes interleaved with active compactions: stale completions are
/// dropped by epoch, the active gauge is zeroed for the crashed node, and
/// the run still terminates deterministically.
#[test]
fn lsm_survives_crashes_mid_compaction() {
    let make = || {
        let mut cfg =
            ClusterConfig::micro21(DdpModel::new(Consistency::Causal, Persistency::Synchronous))
                .quick()
                .with_store(StoreKind::Lsm)
                .with_compaction(storm())
                .with_crash(
                    1,
                    ddp_sim::Duration::from_micros(30),
                    ddp_sim::Duration::from_micros(40),
                );
        cfg.warmup_requests = 30;
        cfg.measured_requests = 800;
        let mut sim = Simulation::new(cfg);
        let summary = sim.run().summary;
        let crashes = sim.cluster().stats().crashes.clone();
        (summary, crashes)
    };
    let (a, crashes_a) = make();
    let (b, crashes_b) = make();
    assert_eq!(
        a, b,
        "crash + compaction interleaving must be deterministic"
    );
    assert_eq!(crashes_a, crashes_b);
    assert!(!crashes_a.is_empty(), "the crash plan must fire");
    assert!(
        a.lsm_seals > 0,
        "compaction must be active around the crash"
    );
}
