//! Integration tests of the windowed metrics timeline: per-window sums
//! must equal the measured `RunStats` totals on every model (the windows
//! partition the measured interval — nothing is lost or double-counted),
//! timeline streams must be byte-identical across executor thread counts,
//! and the timeline must be read-only with respect to the simulation.

use ddp_core::{
    ClusterConfig, DdpModel, OpenLoopPlan, Simulation, TimelineDump, TimelineWindow, TraceConfig,
};
use ddp_harness::{run_sweep_instrumented, timeline_end_to_json, timeline_window_to_json, Sweep};
use ddp_sim::Duration;

fn quick_cfg(model: DdpModel) -> ClusterConfig {
    let mut cfg = ClusterConfig::micro21(model).quick();
    cfg.warmup_requests = 30;
    cfg.measured_requests = 400;
    cfg
}

fn timed(cfg: ClusterConfig) -> ClusterConfig {
    cfg.with_trace(TraceConfig::default().with_timeline(Duration::from_micros(20)))
}

/// Runs one config and returns its timeline next to the finished
/// simulation (for the `RunStats` the totals are checked against).
fn run_timed(cfg: ClusterConfig) -> (TimelineDump, Simulation) {
    let mut sim = Simulation::new(timed(cfg));
    sim.run();
    let dump = sim.take_timeline().expect("timeline was enabled");
    (dump, sim)
}

fn sum(dump: &TimelineDump, f: fn(&TimelineWindow) -> u64) -> u64 {
    dump.windows.iter().map(f).sum()
}

#[test]
fn window_counters_sum_to_run_totals_on_every_model() {
    for model in DdpModel::all() {
        let (dump, sim) = run_timed(quick_cfg(model));
        let stats = sim.cluster().stats();
        assert!(!dump.windows.is_empty(), "{model}: no windows recorded");
        assert_eq!(dump.clipped, 0, "{model}: quick run must not clip");

        assert_eq!(
            sum(&dump, |w| w.reads_completed),
            stats.reads_completed,
            "{model}: reads leaked across windows"
        );
        assert_eq!(
            sum(&dump, |w| w.writes_completed),
            stats.writes_completed,
            "{model}: writes leaked across windows"
        );
        assert_eq!(
            sum(&dump, |w| w.persists_issued),
            stats.persists_issued,
            "{model}: persists leaked across windows"
        );
        assert_eq!(
            sum(&dump, |w| w.lag_count()),
            stats.vp_dp_lag.count(),
            "{model}: VP->DP lag samples leaked across windows"
        );
        assert_eq!(
            sum(&dump, |w| w.nvm_queue_ns),
            stats.nvm_queue_wait.as_nanos(),
            "{model}: NVM queue-wait time diverged"
        );
        assert_eq!(
            sum(&dump, |w| w.service_ns),
            stats.phase.write_service.as_nanos(),
            "{model}: write service time diverged"
        );
        assert_eq!(
            sum(&dump, |w| w.queue_ns),
            stats.phase.write_queue.as_nanos(),
            "{model}: write queue time diverged"
        );
        assert_eq!(
            sum(&dump, |w| w.network_ns),
            stats.phase.write_network.as_nanos(),
            "{model}: invalidation time diverged"
        );
        assert_eq!(
            sum(&dump, |w| w.persist_stall_ns),
            stats.phase.write_persist_stall.as_nanos(),
            "{model}: persist-stall time diverged"
        );

        // Windows tile the measured interval gap-free from the origin,
        // which is exactly the RunStats measurement start.
        for (i, w) in dump.windows.iter().enumerate() {
            assert_eq!(w.start_ns, dump.origin_ns + i as u64 * dump.window_ns);
        }
        assert_eq!(
            stats.window_start.as_nanos(),
            dump.origin_ns,
            "{model}: timeline origin must be the measurement start"
        );
    }
}

#[test]
fn open_loop_flow_counters_sum_to_run_totals() {
    // An overloaded open-loop run exercises the arrival / rejection /
    // retry / shed hooks the closed-loop grid leaves at zero.
    let mut plan = OpenLoopPlan::poisson(50_000_000.0);
    // A shallow queue and a single retry make shedding certain even in a
    // quick run.
    plan.queue_capacity = Some(4);
    plan.max_retries = 1;
    let cfg = quick_cfg(DdpModel::baseline()).with_open_loop(plan);
    let (dump, sim) = run_timed(cfg);
    let stats = sim.cluster().stats();
    assert!(stats.ol_arrivals > 0, "the run saw no open-loop arrivals");
    assert!(stats.ol_shed > 0, "the run was meant to overload and shed");
    assert_eq!(sum(&dump, |w| w.ol_arrivals), stats.ol_arrivals);
    assert_eq!(sum(&dump, |w| w.ol_rejections), stats.ol_rejections);
    assert_eq!(sum(&dump, |w| w.ol_retries), stats.ol_retries);
    assert_eq!(sum(&dump, |w| w.ol_shed), stats.ol_shed);
}

#[test]
fn timeline_streams_are_bit_identical_across_thread_counts() {
    let sweep = || Sweep::grid25(|m| timed(quick_cfg(m)));
    let serial = run_sweep_instrumented("timeline-seq", sweep(), 1);
    let parallel = run_sweep_instrumented("timeline-par", sweep(), 4);
    assert_eq!(serial.len(), parallel.len());
    for ((seq_rec, _, seq_tl), (par_rec, _, par_tl)) in serial.iter().zip(&parallel) {
        assert_eq!(seq_rec, par_rec);
        let (seq_tl, par_tl) = (seq_tl.as_ref().unwrap(), par_tl.as_ref().unwrap());
        assert_eq!(seq_tl.windows.len(), par_tl.windows.len());
        // The serialized stream matches byte for byte, window by window.
        for (k, (a, b)) in seq_tl.windows.iter().zip(&par_tl.windows).enumerate() {
            assert_eq!(
                timeline_window_to_json(seq_rec.index, k, a),
                timeline_window_to_json(par_rec.index, k, b),
                "{} window {k} diverged",
                seq_rec.model
            );
        }
        assert_eq!(
            timeline_end_to_json(seq_rec.index, &seq_rec.label, seq_tl),
            timeline_end_to_json(par_rec.index, &par_rec.label, par_tl)
        );
    }
}

#[test]
fn timeline_runs_report_byte_identical_summaries() {
    // The timeline is read-only: enabling it must not perturb a single
    // bit of the simulation's result, on any of the 25 models.
    for model in DdpModel::all() {
        let plain = Simulation::new(quick_cfg(model)).run().summary;
        let observed = Simulation::new(timed(quick_cfg(model))).run().summary;
        assert_eq!(plain, observed, "{model}: the timeline perturbed the run");
    }
}
