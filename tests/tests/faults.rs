//! Fault-injection integration tests: lossy fabric, mid-run crash/rejoin,
//! and the opt-in guarantee that a zero-fault plan changes nothing.

use ddp_core::{ClusterConfig, Consistency, DdpModel, HistoryChecker, Persistency, Simulation};
use ddp_harness::{default_threads, run_sweep_named, Sweep};
use ddp_sim::Duration;

fn tiny(model: DdpModel) -> ClusterConfig {
    let mut cfg = ClusterConfig::micro21(model);
    cfg.warmup_requests = 100;
    cfg.measured_requests = 1_500;
    cfg
}

/// A crash schedule scaled to the model's fault-free run length, so the
/// crash and the rejoin both land inside the measured window regardless of
/// the >10x throughput spread across models.
fn scaled_crash(model: DdpModel) -> (Duration, Duration) {
    let mut probe = Simulation::new(tiny(model));
    probe.run();
    let st = probe.cluster().stats();
    let run_ns = (st.window_start.as_nanos() + st.measured_time.as_nanos()) as f64;
    (
        Duration::from_nanos((run_ns * 0.40) as u64),
        Duration::from_nanos((run_ns * 0.25) as u64),
    )
}

#[test]
fn all_models_complete_under_loss_and_mid_run_crash() {
    // Probe every model's fault-free run length in one parallel sweep; the
    // records carry it, so no per-model probe simulations are needed.
    let threads = default_threads();
    let probes = run_sweep_named("faults-probe", Sweep::grid25(tiny), threads);

    let mut crash_sweep = Sweep::new();
    for model in DdpModel::all() {
        let run_ns = probes[model.grid_index()].counters.run_ns() as f64;
        let at = Duration::from_nanos((run_ns * 0.40) as u64);
        let down_for = Duration::from_nanos((run_ns * 0.25) as u64);
        crash_sweep.push(
            model.to_string(),
            tiny(model).with_loss(0.01).with_crash(2, at, down_for),
        );
    }
    let records = run_sweep_named("faults-crash", crash_sweep, threads);

    for model in DdpModel::all() {
        let r = &records[model.grid_index()];
        assert!(
            r.summary.throughput > 0.0,
            "{model} stalled under loss + crash"
        );
        let c = &r.counters;
        assert_eq!(c.crashes.len(), 1, "{model}: crash did not fire");
        assert_eq!(c.rejoins.len(), 1, "{model}: node never rejoined");
        assert_eq!(c.crashes[0].0, 2);
        assert_eq!(c.rejoins[0].0, 2);
        assert!(
            c.rejoins[0].1 > c.crashes[0].1,
            "{model}: rejoin must follow the crash"
        );
        assert!(
            c.messages_dropped > 0,
            "{model}: lossy fabric never dropped anything"
        );
    }
}

#[test]
fn zero_fault_plan_reports_zero_counters() {
    for model in [
        DdpModel::baseline(),
        DdpModel::new(Consistency::Transactional, Persistency::Strict),
        DdpModel::new(Consistency::Causal, Persistency::Eventual),
    ] {
        let mut sim = Simulation::new(tiny(model));
        let s = sim.run().summary;
        assert_eq!(s.messages_dropped, 0);
        assert_eq!(s.messages_duplicated, 0);
        assert_eq!(s.retransmits, 0);
        assert_eq!(s.client_timeouts, 0);
        let st = sim.cluster().stats();
        assert_eq!(st.duplicates_suppressed, 0);
        assert_eq!(st.transient_expirations, 0);
        assert_eq!(st.catchup_keys, 0);
        assert!(st.crashes.is_empty() && st.rejoins.is_empty());
    }
}

#[test]
fn retransmissions_recover_lost_acks() {
    // At 5% loss the INV/ACK rounds of the strongest model lose messages
    // constantly; the run still completes because the coordinator re-sends.
    let mut sim = Simulation::new(tiny(DdpModel::baseline()).with_loss(0.05));
    let report = sim.run();
    assert!(report.summary.throughput > 0.0);
    assert!(
        report.summary.retransmits > 0,
        "loss this high must trigger retries"
    );
    let st = sim.cluster().stats();
    assert!(
        st.duplicates_suppressed > 0,
        "fabric duplication must exercise the dedup masks"
    );
}

#[test]
fn monotonic_reads_hold_under_loss_and_crash_for_linearizable() {
    let model = DdpModel::baseline();
    let (at, down_for) = scaled_crash(model);
    let mut sim = Simulation::new(
        tiny(model)
            .with_observations()
            .with_loss(0.01)
            .with_crash(2, at, down_for),
    );
    sim.run();
    let checker = HistoryChecker::new(sim.cluster().observations().clone());
    let out = checker.monotonic_reads();
    assert!(out.holds, "monotonic reads violated: {:?}", out.violations);
}

#[test]
fn crashed_node_catches_up_on_rejoin() {
    // Strict persistency acks only after the majority persisted, so the
    // rejoining node has a durable floor to rebuild from, plus whatever its
    // peers accepted while it was down.
    let model = DdpModel::new(Consistency::Linearizable, Persistency::Strict);
    let (at, down_for) = scaled_crash(model);
    let mut sim = Simulation::new(tiny(model).with_loss(0.01).with_crash(2, at, down_for));
    sim.run();
    let st = sim.cluster().stats();
    assert_eq!(st.rejoins.len(), 1);
    assert!(
        st.catchup_keys > 0,
        "a node down for 25% of the run must have missed some keys"
    );
}
