//! Fault-injection integration tests: lossy fabric, mid-run crash/rejoin,
//! and the opt-in guarantee that a zero-fault plan changes nothing.

use ddp_core::{
    ClusterConfig, Consistency, DdpModel, HistoryChecker, Persistency, Simulation,
};
use ddp_sim::Duration;

fn tiny(model: DdpModel) -> ClusterConfig {
    let mut cfg = ClusterConfig::micro21(model);
    cfg.warmup_requests = 100;
    cfg.measured_requests = 1_500;
    cfg
}

/// A crash schedule scaled to the model's fault-free run length, so the
/// crash and the rejoin both land inside the measured window regardless of
/// the >10x throughput spread across models.
fn scaled_crash(model: DdpModel) -> (Duration, Duration) {
    let mut probe = Simulation::new(tiny(model));
    probe.run();
    let st = probe.cluster().stats();
    let run_ns = (st.window_start.as_nanos() + st.measured_time.as_nanos()) as f64;
    (
        Duration::from_nanos((run_ns * 0.40) as u64),
        Duration::from_nanos((run_ns * 0.25) as u64),
    )
}

#[test]
fn all_models_complete_under_loss_and_mid_run_crash() {
    for c in Consistency::ALL {
        for p in Persistency::ALL {
            let model = DdpModel::new(c, p);
            let (at, down_for) = scaled_crash(model);
            let mut sim = Simulation::new(
                tiny(model).with_loss(0.01).with_crash(2, at, down_for),
            );
            let report = sim.run();
            assert!(
                report.summary.throughput > 0.0,
                "{model} stalled under loss + crash"
            );
            let st = sim.cluster().stats();
            assert_eq!(st.crashes.len(), 1, "{model}: crash did not fire");
            assert_eq!(st.rejoins.len(), 1, "{model}: node never rejoined");
            assert_eq!(st.crashes[0].0, 2);
            assert_eq!(st.rejoins[0].0, 2);
            assert!(
                st.rejoins[0].1 > st.crashes[0].1,
                "{model}: rejoin must follow the crash"
            );
            assert!(
                st.messages_dropped > 0,
                "{model}: lossy fabric never dropped anything"
            );
        }
    }
}

#[test]
fn zero_fault_plan_reports_zero_counters() {
    for model in [
        DdpModel::baseline(),
        DdpModel::new(Consistency::Transactional, Persistency::Strict),
        DdpModel::new(Consistency::Causal, Persistency::Eventual),
    ] {
        let mut sim = Simulation::new(tiny(model));
        let s = sim.run().summary;
        assert_eq!(s.messages_dropped, 0);
        assert_eq!(s.messages_duplicated, 0);
        assert_eq!(s.retransmits, 0);
        assert_eq!(s.client_timeouts, 0);
        let st = sim.cluster().stats();
        assert_eq!(st.duplicates_suppressed, 0);
        assert_eq!(st.transient_expirations, 0);
        assert_eq!(st.catchup_keys, 0);
        assert!(st.crashes.is_empty() && st.rejoins.is_empty());
    }
}

#[test]
fn retransmissions_recover_lost_acks() {
    // At 5% loss the INV/ACK rounds of the strongest model lose messages
    // constantly; the run still completes because the coordinator re-sends.
    let mut sim = Simulation::new(tiny(DdpModel::baseline()).with_loss(0.05));
    let report = sim.run();
    assert!(report.summary.throughput > 0.0);
    assert!(report.summary.retransmits > 0, "loss this high must trigger retries");
    let st = sim.cluster().stats();
    assert!(
        st.duplicates_suppressed > 0,
        "fabric duplication must exercise the dedup masks"
    );
}

#[test]
fn monotonic_reads_hold_under_loss_and_crash_for_linearizable() {
    let model = DdpModel::baseline();
    let (at, down_for) = scaled_crash(model);
    let mut sim = Simulation::new(
        tiny(model)
            .with_observations()
            .with_loss(0.01)
            .with_crash(2, at, down_for),
    );
    sim.run();
    let checker = HistoryChecker::new(sim.cluster().observations().clone());
    let out = checker.monotonic_reads();
    assert!(out.holds, "monotonic reads violated: {:?}", out.violations);
}

#[test]
fn crashed_node_catches_up_on_rejoin() {
    // Strict persistency acks only after the majority persisted, so the
    // rejoining node has a durable floor to rebuild from, plus whatever its
    // peers accepted while it was down.
    let model = DdpModel::new(Consistency::Linearizable, Persistency::Strict);
    let (at, down_for) = scaled_crash(model);
    let mut sim = Simulation::new(
        tiny(model).with_loss(0.01).with_crash(2, at, down_for),
    );
    sim.run();
    let st = sim.cluster().stats();
    assert_eq!(st.rejoins.len(), 1);
    assert!(
        st.catchup_keys > 0,
        "a node down for 25% of the run must have missed some keys"
    );
}
