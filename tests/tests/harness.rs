//! Integration tests of the sweep harness: determinism under parallelism,
//! JSON-lines correctness, and thread-safety of the simulation stack.

use ddp_core::{ClusterConfig, DdpModel, RunSummary, Simulation};
use ddp_harness::{escape_json, record_to_json, run_sweep, unescape_json, ModelGrid, Sweep};

// Compile-time witnesses that everything the executor moves across worker
// threads is `Send`. If a non-Send field (Rc, raw pointer, thread-local
// handle) ever lands in the simulation stack, the workspace stops
// compiling here with a readable error instead of deep inside
// `std::thread::scope`.
const _: () = {
    ddp_harness::assert_send::<Simulation>();
    ddp_harness::assert_send::<ClusterConfig>();
    ddp_harness::assert_send::<RunSummary>();
    ddp_harness::assert_send::<ddp_harness::RunRecord>();
};

fn tiny_grid() -> Sweep {
    Sweep::grid25(|m| {
        let mut cfg = ClusterConfig::micro21(m).quick();
        cfg.warmup_requests = 30;
        cfg.measured_requests = 400;
        cfg
    })
}

#[test]
fn parallel_and_sequential_sweeps_are_bit_identical() {
    let sequential = run_sweep(tiny_grid(), 1);
    let parallel = run_sweep(tiny_grid(), 4);
    assert_eq!(sequential.len(), DdpModel::COUNT);
    // Records are PartialEq over every field (floats included): the streams
    // must match bit for bit, not approximately.
    assert_eq!(sequential, parallel);
    // And so must the serialized JSON-lines stream, byte for byte.
    let seq_json: Vec<String> = sequential.iter().map(record_to_json).collect();
    let par_json: Vec<String> = parallel.iter().map(record_to_json).collect();
    assert_eq!(seq_json, par_json);
}

#[test]
fn records_are_addressable_by_grid_index() {
    let records = run_sweep(tiny_grid(), 4);
    let grid = ModelGrid::new(&records);
    for model in DdpModel::all() {
        let r = grid.model(model);
        assert_eq!(r.model, model);
        assert_eq!(r.index, model.grid_index());
        assert_eq!(
            grid.get(model.consistency, model.persistency).index,
            r.index
        );
        assert!(r.summary.throughput > 0.0, "{model} produced no work");
        assert!(r.counters.run_ns() > 0, "{model} recorded no run length");
    }
    assert_eq!(grid.baseline().model, DdpModel::baseline());
}

#[test]
fn json_escaping_round_trips_hostile_labels() {
    let hostile = "quote:\" backslash:\\ newline:\n tab:\t nul:\0 bell:\u{07} unicode:\u{1F600}";
    let escaped = escape_json(hostile);
    // The escaped form must be a clean single-line JSON string body.
    assert!(!escaped.contains('\n') && !escaped.contains('\0'));
    assert_eq!(unescape_json(&escaped).as_deref(), Some(hostile));

    // Exhaustive over the control range the RFC requires escaping.
    for code in 0u32..0x20 {
        let s = char::from_u32(code).unwrap().to_string();
        assert_eq!(
            unescape_json(&escape_json(&s)).as_deref(),
            Some(s.as_str()),
            "control char U+{code:04X} failed to round-trip"
        );
    }
}

#[test]
fn record_json_is_one_parseable_line_per_record() {
    let mut cfg = ClusterConfig::micro21(DdpModel::baseline()).quick();
    cfg.warmup_requests = 30;
    cfg.measured_requests = 300;
    let records = run_sweep(
        Sweep::new().trial("hostile \"label\" with \\ and \n inside", cfg),
        1,
    );
    let line = record_to_json(&records[0]);
    assert!(!line.contains('\n'), "a JSON-lines row must be one line");
    assert!(line.starts_with('{') && line.ends_with('}'));
    for key in [
        "\"index\":0",
        "\"label\":",
        "\"consistency\":\"Linearizable\"",
        "\"persistency\":\"Synchronous\"",
        "\"throughput\":",
        "\"retransmits\":0",
        "\"crashes\":[]",
        "\"measured_ns\":",
    ] {
        assert!(line.contains(key), "missing {key} in {line}");
    }
    // The hostile label survives an escape/unescape round trip.
    let start = line.find("\"label\":\"").unwrap() + "\"label\":\"".len();
    let end = line[start..].find("\",\"consistency\"").unwrap() + start;
    assert_eq!(
        unescape_json(&line[start..end]).as_deref(),
        Some("hostile \"label\" with \\ and \n inside")
    );
}
