//! Cross-crate integration tests: the whole stack assembled end to end.

use ddp_core::{run_experiment, ClusterConfig, Consistency, DdpModel, Persistency};
use ddp_mem::{MemoryController, MemoryParams};
use ddp_net::{Fabric, NetworkParams, NodeId, RdmaKind};
use ddp_sim::{Duration, SimTime};
use ddp_store::{HashTable, KvStore, StoreKind};
use ddp_workload::{ClientPool, WorkloadSpec};

fn tiny(model: DdpModel) -> ClusterConfig {
    let mut cfg = ClusterConfig::micro21(model);
    cfg.warmup_requests = 100;
    cfg.measured_requests = 1_500;
    cfg
}

#[test]
fn substrates_compose_manually() {
    // Drive the memory, network, store, and workload substrates directly —
    // the same path the protocol engine takes — and check the timing math
    // lines up.
    let mut mem = MemoryController::new(MemoryParams::micro21());
    let mut fabric = Fabric::new(3, NetworkParams::micro21());
    let mut store = HashTable::new();
    let mut stream = WorkloadSpec::ycsb_a().stream(7);

    let mut now = SimTime::ZERO;
    for _ in 0..1_000 {
        let req = stream.next_request();
        let lat = mem.volatile_access(req.key << 6);
        now += lat;
        store.put(req.key, req.value_bytes);
        let d = fabric.unicast(
            now,
            NodeId(0),
            NodeId(1),
            64 + u64::from(req.value_bytes),
            RdmaKind::WriteVolatile,
        );
        assert!(d.arrival > now, "messages must take time");
        let done = mem.persist(now, req.key << 6, u64::from(req.value_bytes));
        assert!(done > now, "persists must take time");
        now += Duration::from_nanos(100);
    }
    assert!(!store.is_empty());
    assert!(fabric.nic(NodeId(0)).sent_count() == 1_000);
}

#[test]
fn client_pool_feeds_cluster_sizes() {
    let pool = ClientPool::new(&WorkloadSpec::ycsb_a(), 100, 5, 1);
    assert_eq!(pool.len(), 100);
    for node in 0..5u8 {
        assert_eq!(
            pool.clients().filter(|c| c.home_node() == node).count(),
            20,
            "paper default: 20 clients per server"
        );
    }
}

#[test]
fn end_to_end_runs_on_every_store_backend() {
    for kind in StoreKind::ALL {
        let model = DdpModel::new(Consistency::Causal, Persistency::Synchronous);
        let report = run_experiment(tiny(model).with_store(kind));
        assert!(report.summary.throughput > 0.0, "backend {kind}");
    }
}

#[test]
fn paper_headline_orderings_hold_end_to_end() {
    // The one-line summary of Figure 6a: strictest slowest, most relaxed
    // fastest, causal in between.
    let lin = run_experiment(tiny(DdpModel::baseline()))
        .summary
        .throughput;
    let causal = run_experiment(tiny(DdpModel::new(
        Consistency::Causal,
        Persistency::Synchronous,
    )))
    .summary
    .throughput;
    let ev = run_experiment(tiny(DdpModel::new(
        Consistency::Eventual,
        Persistency::Eventual,
    )))
    .summary
    .throughput;
    assert!(lin < causal, "lin {lin} !< causal {causal}");
    assert!(causal < ev, "causal {causal} !< eventual {ev}");
}

#[test]
fn rtt_sweep_hits_linearizable_hardest() {
    // Figure 8: network latency matters for Linearizable, not for Causal.
    let rtts = [Duration::from_nanos(500), Duration::from_micros(2)];
    let lin: Vec<f64> = rtts
        .iter()
        .map(|&rtt| {
            run_experiment(tiny(DdpModel::baseline()).with_round_trip(rtt))
                .summary
                .throughput
        })
        .collect();
    let causal: Vec<f64> = rtts
        .iter()
        .map(|&rtt| {
            run_experiment(
                tiny(DdpModel::new(Consistency::Causal, Persistency::Synchronous))
                    .with_round_trip(rtt),
            )
            .summary
            .throughput
        })
        .collect();
    let lin_drop = 1.0 - lin[1] / lin[0];
    let causal_drop = 1.0 - causal[1] / causal[0];
    assert!(
        lin_drop > causal_drop,
        "lin drop {lin_drop:.3} should exceed causal drop {causal_drop:.3}"
    );
    assert!(
        causal_drop.abs() < 0.10,
        "causal should be nearly RTT-insensitive, dropped {causal_drop:.3}"
    );
}

#[test]
fn client_sweep_leaves_causal_unmoved() {
    // Figure 7: Causal+Synchronous is largely unaffected by client count.
    let per_client = |model: DdpModel, clients: u32| {
        run_experiment(tiny(model).with_clients(clients))
            .summary
            .throughput
            / f64::from(clients)
    };
    let causal = DdpModel::new(Consistency::Causal, Persistency::Synchronous);
    let c10 = per_client(causal, 10);
    let c100 = per_client(causal, 100);
    // Per-client service rate barely moves for causal.
    let shift = (c10 / c100 - 1.0).abs();
    assert!(
        shift < 0.35,
        "causal per-client throughput moved {shift:.2} between 10 and 100 clients"
    );
}
