//! Property tests over the substrate crates: the invariants the protocol
//! engine silently relies on.

use std::collections::BTreeMap;

use ddp_mem::{AccessKind, BankedDevice, CacheHierarchy, MemoryParams};
use ddp_net::{Fabric, NetworkParams, NodeId, RdmaKind};
use ddp_sim::{Duration, EventQueue, Histogram, SimRng, SimTime};
use proptest::prelude::*;

proptest! {
    /// The event queue is a stable priority queue: time-ordered, FIFO at
    /// equal times, regardless of push order.
    #[test]
    fn event_queue_is_a_stable_priority_queue(times in prop::collection::vec(0u64..1_000, 1..200)) {
        let mut q = EventQueue::new();
        for (i, &t) in times.iter().enumerate() {
            q.push(SimTime::from_nanos(t), (t, i));
        }
        let mut last: Option<(u64, usize)> = None;
        while let Some((at, (t, i))) = q.pop() {
            prop_assert_eq!(at.as_nanos(), t);
            if let Some((lt, li)) = last {
                prop_assert!(t > lt || (t == lt && i > li), "stability violated");
            }
            last = Some((t, i));
        }
    }

    /// Histogram percentiles are within the documented ~3% relative error
    /// of the true quantiles for arbitrary sample sets.
    #[test]
    fn histogram_percentiles_track_true_quantiles(
        mut samples in prop::collection::vec(1u64..10_000_000, 10..500),
    ) {
        let mut h = Histogram::new();
        for &s in &samples {
            h.record(Duration::from_nanos(s));
        }
        samples.sort_unstable();
        for q in [0.5f64, 0.95] {
            let idx = ((q * samples.len() as f64).ceil() as usize).clamp(1, samples.len()) - 1;
            let truth = samples[idx] as f64;
            let approx = h.percentile(q).as_nanos() as f64;
            let err = (approx - truth).abs() / truth;
            prop_assert!(err < 0.05, "q={q}: approx {approx} vs true {truth} (err {err:.3})");
        }
    }

    /// The banked device never completes a request before its service time,
    /// and same-bank requests never overlap.
    #[test]
    fn banked_device_conserves_service_time(
        addrs in prop::collection::vec(0u64..64, 1..100),
    ) {
        let params = MemoryParams::micro21().nvm;
        let mut dev = BankedDevice::new(params);
        let mut per_addr_last: BTreeMap<u64, SimTime> = BTreeMap::new();
        for &a in &addrs {
            let done = dev.submit(SimTime::ZERO, a << 6, 64, AccessKind::Write);
            let min_service = params.write_latency + params.transfer_time(64);
            prop_assert!(done.as_nanos() >= min_service.as_nanos());
            // Same address = same bank: completions must strictly advance.
            if let Some(prev) = per_addr_last.get(&a) {
                prop_assert!(done > *prev, "same-bank requests overlapped");
            }
            per_addr_last.insert(a, done);
        }
    }

    /// Per-(sender, receiver) message delivery is FIFO — the protocol
    /// engine's causal and scope bookkeeping depend on it.
    #[test]
    fn fabric_is_fifo_per_pair(
        sizes in prop::collection::vec(1u64..4096, 1..100),
        gaps in prop::collection::vec(0u64..2_000, 1..100),
    ) {
        let mut fabric = Fabric::new(2, NetworkParams::micro21());
        let mut now = SimTime::ZERO;
        let mut last_arrival = SimTime::ZERO;
        for (s, g) in sizes.iter().zip(&gaps) {
            now += Duration::from_nanos(*g);
            let d = fabric.unicast(now, NodeId(0), NodeId(1), *s, RdmaKind::Send);
            prop_assert!(
                d.arrival >= last_arrival,
                "message reordering between a single pair"
            );
            last_arrival = d.arrival;
        }
    }

    /// The cache hierarchy never reports a hit for a line it was never
    /// given (validated against a set model).
    #[test]
    fn cache_reports_no_false_hits(addrs in prop::collection::vec(0u64..100_000, 1..300)) {
        use std::collections::BTreeSet;
        let mut caches = CacheHierarchy::new(&MemoryParams::micro21());
        let mut seen_lines: BTreeSet<u64> = BTreeSet::new();
        for &a in &addrs {
            let addr = a << 3; // spread sub-line offsets
            let (level, _) = caches.access(addr);
            let line = addr >> 6;
            if level != ddp_mem::HitLevel::Memory {
                prop_assert!(
                    seen_lines.contains(&line),
                    "hit for never-touched line {line} at {level:?}"
                );
            }
            seen_lines.insert(line);
        }
    }

    /// RNG bounded generation is unbiased enough that every residue class
    /// appears over a modest sample (smoke-level statistical check).
    #[test]
    fn rng_next_below_covers(seed in 0u64..10_000, bound in 2u64..32) {
        let mut rng = SimRng::seed_from(seed);
        let mut seen = vec![false; bound as usize];
        for _ in 0..(bound * 200) {
            seen[rng.next_below(bound) as usize] = true;
        }
        prop_assert!(seen.iter().all(|&s| s), "bound {bound}: some values never drawn");
    }
}
