//! Tier-1 wrapper around `ddp-audit`: the workspace-is-clean gate plus
//! known-bad fixtures proving every lint family actually fires (and that
//! its sanctioned escape actually suppresses).
//!
//! The fixtures are in-memory [`SourceFile`]s, so these tests never touch
//! disk except for the end-to-end audit of the real checkout. The
//! mutation tests take the *real* workspace file set and break it in
//! memory — deleting a serialized field, dropping a `HashMap` into a sim
//! crate — to prove the audit would catch exactly the regressions it was
//! built for.

use std::path::Path;

use ddp_audit::{audit, audit_workspace, inventory, lint_spec, SourceFile, LINTS};

/// The workspace root relative to the `tests` crate manifest.
fn workspace_root() -> &'static Path {
    Path::new(concat!(env!("CARGO_MANIFEST_DIR"), "/.."))
}

fn lints_of(files: &[SourceFile]) -> Vec<&'static str> {
    audit(files).into_iter().map(|f| f.lint).collect()
}

fn one(path: &str, text: &str) -> Vec<SourceFile> {
    vec![SourceFile::new(path, text)]
}

// ---------------------------------------------------------------------
// The gate: the checkout itself is clean.
// ---------------------------------------------------------------------

#[test]
fn workspace_is_clean() {
    let findings = audit_workspace(workspace_root()).expect("workspace walk");
    let rendered: Vec<String> = findings.iter().map(ddp_audit::Finding::render).collect();
    assert!(
        findings.is_empty(),
        "the workspace must pass its own audit:\n{}",
        rendered.join("\n")
    );
}

#[test]
fn workspace_inventory_is_small_and_justified() {
    // Every escape and unsafe site in the workspace, in one list. The
    // audited surface should stay tiny: grow this bound deliberately.
    let files = ddp_audit::load_workspace(workspace_root()).expect("workspace walk");
    let inv = inventory(&files);
    let allows = inv.iter().filter(|e| e.kind == "allow").count();
    let unsafes = inv.iter().filter(|e| e.kind == "unsafe").count();
    assert!(
        allows <= 8,
        "escape count crept up to {allows}; each new audit:allow is a review event"
    );
    assert_eq!(
        unsafes, 0,
        "the workspace has no unsafe code today; a new unsafe site must be a deliberate decision"
    );
    // All real escapes live in the one sanctioned wall-clock island.
    for e in inv.iter().filter(|e| e.kind == "allow") {
        assert_eq!(
            e.path, "crates/harness/src/progress.rs",
            "audit:allow outside the progress module: {}:{} {}",
            e.path, e.line, e.detail
        );
    }
}

// ---------------------------------------------------------------------
// Determinism lints: one positive + one allowlisted-negative each.
// ---------------------------------------------------------------------

#[test]
fn hash_collections_fixture() {
    let bad = one(
        "crates/sim/src/fixture.rs",
        "use std::collections::HashMap;\n",
    );
    assert_eq!(lints_of(&bad), vec!["hash-collections"]);

    let allowed = one(
        "crates/sim/src/fixture.rs",
        "// audit:allow(hash-collections): fixture — proves the escape suppresses\nuse std::collections::HashMap;\n",
    );
    assert!(lints_of(&allowed).is_empty());
}

#[test]
fn wall_clock_fixture() {
    let bad = one(
        "crates/core/src/fixture.rs",
        "fn f() { let t = std::time::Instant::now(); }\n",
    );
    let lints = lints_of(&bad);
    assert!(lints.contains(&"wall-clock"), "{lints:?}");

    let allowed = one(
        "crates/harness/src/fixture.rs",
        "// audit:allow(wall-clock): fixture — stderr progress timing only\nfn f() { let t = std::time::Instant::now(); }\n",
    );
    assert!(lints_of(&allowed).is_empty());

    // The shim class is on the per-crate allowlist: no escape needed.
    let shim = one(
        "shims/criterion/src/timer.rs",
        "fn f() { let t = std::time::Instant::now(); }\n",
    );
    assert!(lints_of(&shim).is_empty());
}

#[test]
fn ambient_randomness_fixture() {
    let bad = one(
        "crates/workload/src/fixture.rs",
        "fn f() { let r = rand::thread_rng(); }\n",
    );
    assert_eq!(lints_of(&bad), vec!["ambient-randomness"]);

    let allowed = one(
        "crates/workload/src/fixture.rs",
        "fn f() { let r = rand::thread_rng(); } // audit:allow(ambient-randomness): fixture — trailing escape form\n",
    );
    assert!(lints_of(&allowed).is_empty());
}

#[test]
fn thread_spawn_fixture() {
    let bad = one(
        "crates/net/src/fixture.rs",
        "fn f() { std::thread::spawn(|| {}); }\n",
    );
    assert_eq!(lints_of(&bad), vec!["thread-spawn"]);

    let allowed = one(
        "crates/harness/src/fixture.rs",
        "// audit:allow(thread-spawn): fixture — the one sanctioned worker pool\nfn f() { std::thread::scope(|s| { let _ = s; }); }\n",
    );
    assert!(lints_of(&allowed).is_empty());
}

// ---------------------------------------------------------------------
// Unsafe inventory: banned in sim, justification-gated elsewhere.
// ---------------------------------------------------------------------

#[test]
fn unsafe_fixture() {
    let in_sim = one(
        "crates/store/src/fixture.rs",
        "fn f(p: *const u8) -> u8 { unsafe { *p } }\n",
    );
    assert_eq!(lints_of(&in_sim), vec!["unsafe-in-sim"]);

    let bare = one(
        "examples/fixture.rs",
        "fn f(p: *const u8) -> u8 { unsafe { *p } }\n",
    );
    assert_eq!(lints_of(&bare), vec!["unsafe-justification"]);

    // The negative form is a SAFETY justification, not an audit:allow —
    // the lint is deliberately non-escapable.
    let justified = one(
        "examples/fixture.rs",
        "// SAFETY: fixture — p is non-null and valid for reads by contract\nfn f(p: *const u8) -> u8 { unsafe { *p } }\n",
    );
    assert!(lints_of(&justified).is_empty());
    assert!(!lint_spec("unsafe-in-sim").unwrap().escapable);
    assert!(!lint_spec("unsafe-justification").unwrap().escapable);
}

#[test]
fn hygiene_header_fixture() {
    let bad = one(
        "crates/sim/src/lib.rs",
        "//! A crate root without the header.\n",
    );
    assert_eq!(lints_of(&bad), vec!["hygiene-header"]);

    let good = one(
        "crates/sim/src/lib.rs",
        "//! A crate root with the header.\n#![forbid(unsafe_code)]\n",
    );
    assert!(lints_of(&good).is_empty());
}

// ---------------------------------------------------------------------
// The escape grammar polices itself.
// ---------------------------------------------------------------------

#[test]
fn invalid_and_unused_allow_fixture() {
    // Missing reason: the construct still fires AND the allow is invalid.
    let no_reason = one(
        "crates/sim/src/fixture.rs",
        "// audit:allow(hash-collections)\nuse std::collections::HashMap;\n",
    );
    let lints = lints_of(&no_reason);
    assert!(lints.contains(&"invalid-allow"), "{lints:?}");
    assert!(lints.contains(&"hash-collections"), "{lints:?}");

    // Naming a non-escapable lint is invalid.
    let non_escapable = one(
        "crates/sim/src/fixture.rs",
        "// audit:allow(unsafe-in-sim): nice try\nlet x = 1;\n",
    );
    assert_eq!(lints_of(&non_escapable), vec!["invalid-allow"]);

    // An allow that suppresses nothing must be removed.
    let unused = one(
        "crates/sim/src/fixture.rs",
        "// audit:allow(wall-clock): fixture — nothing below needs this\nlet x = 1;\n",
    );
    assert_eq!(lints_of(&unused), vec!["unused-allow"]);

    // The allowlisted-negative: a well-formed, *used* escape is silent.
    let used = one(
        "crates/sim/src/fixture.rs",
        "// audit:allow(wall-clock): fixture — used and well-formed\nfn f() { let t = Instant::now(); }\n",
    );
    assert!(lints_of(&used).is_empty());
}

// ---------------------------------------------------------------------
// Cross-file invariants.
// ---------------------------------------------------------------------

#[test]
fn summary_schema_fixture() {
    let stats = SourceFile::new(
        "crates/core/src/stats.rs",
        "pub struct RunSummary { pub throughput: f64, pub forgotten: f64 }",
    );
    let fields = SourceFile::new(
        "crates/harness/src/fields.rs",
        r#"pub fn record_fields() { vec![("throughput", 0)]; }"#,
    );
    let findings = audit(&[stats, fields]);
    assert_eq!(findings.len(), 1, "{findings:?}");
    assert_eq!(findings[0].lint, "summary-schema");
    assert!(findings[0].message.contains("forgotten"));

    // Negative: both fields exported → clean.
    let stats = SourceFile::new(
        "crates/core/src/stats.rs",
        "pub struct RunSummary { pub throughput: f64, pub forgotten: f64 }",
    );
    let fields = SourceFile::new(
        "crates/harness/src/fields.rs",
        r#"pub fn record_fields() { vec![("throughput", 0), ("forgotten", 1)]; }"#,
    );
    assert!(audit(&[stats, fields]).is_empty());
}

#[test]
fn timeline_schema_fixture() {
    let window = SourceFile::new(
        "crates/trace/src/timeline.rs",
        "pub struct TimelineWindow { pub start_ns: u64, pub dropped: u64, lag: Histogram }",
    );
    let fields = SourceFile::new(
        "crates/harness/src/timeline.rs",
        r#"pub fn timeline_fields() { vec![("start_ns", 0)]; }"#,
    );
    let findings = audit(&[window, fields]);
    assert_eq!(findings.len(), 1, "{findings:?}");
    assert_eq!(findings[0].lint, "timeline-schema");
    assert!(findings[0].message.contains("dropped"));

    // Negative: every pub field exported (the private lag histogram
    // needs no column) → clean.
    let window = SourceFile::new(
        "crates/trace/src/timeline.rs",
        "pub struct TimelineWindow { pub start_ns: u64, pub dropped: u64, lag: Histogram }",
    );
    let fields = SourceFile::new(
        "crates/harness/src/timeline.rs",
        r#"pub fn timeline_fields() { vec![("start_ns", 0), ("dropped", 1)]; }"#,
    );
    assert!(audit(&[window, fields]).is_empty());
}

#[test]
fn trace_discriminants_fixture() {
    let bad = one(
        "crates/trace/src/record.rs",
        "pub enum TraceEventKind { WriteVp = 0, WriteDp }",
    );
    assert_eq!(lints_of(&bad), vec!["trace-discriminants"]);

    let good = one(
        "crates/trace/src/record.rs",
        "pub enum TraceEventKind { WriteVp = 0, WriteDp = 1 }",
    );
    assert!(lints_of(&good).is_empty());
}

#[test]
fn bench_ci_coverage_fixture() {
    let bin = SourceFile::new("crates/bench/src/bin/newfig.rs", "fn main() {}");
    let ci = SourceFile::new(".github/workflows/ci.yml", "run: cargo test\n");
    let findings = audit(&[bin, ci]);
    assert_eq!(findings.len(), 1, "{findings:?}");
    assert_eq!(findings[0].lint, "bench-ci-coverage");

    let bin = SourceFile::new("crates/bench/src/bin/newfig.rs", "fn main() {}");
    let ci = SourceFile::new(
        ".github/workflows/ci.yml",
        "run: cargo run --release -p ddp-bench --bin newfig -- --quick\n",
    );
    assert!(audit(&[bin, ci]).is_empty());
}

// ---------------------------------------------------------------------
// Mutation tests over the REAL workspace: the acceptance criteria.
// ---------------------------------------------------------------------

#[test]
fn deleting_a_serialized_field_fails_the_audit() {
    let mut files = ddp_audit::load_workspace(workspace_root()).expect("workspace walk");
    let fields = files
        .iter_mut()
        .find(|f| f.path == "crates/harness/src/fields.rs")
        .expect("fields.rs in workspace");
    let mutated = fields
        .text
        .replace("(\"throughput\", F64(s.throughput)),", "");
    assert_ne!(mutated, fields.text, "mutation must remove the export line");
    fields.text = mutated;
    let findings = audit(&files);
    assert!(
        findings
            .iter()
            .any(|f| f.lint == "summary-schema" && f.message.contains("throughput")),
        "dropping a record_fields export must trip summary-schema: {findings:?}"
    );
}

#[test]
fn deleting_a_timeline_column_fails_the_audit() {
    let mut files = ddp_audit::load_workspace(workspace_root()).expect("workspace walk");
    let fields = files
        .iter_mut()
        .find(|f| f.path == "crates/harness/src/timeline.rs")
        .expect("timeline.rs in workspace");
    let mutated = fields
        .text
        .replace("(\"nvm_bank_queue\", U64(w.nvm_bank_queue)),", "");
    assert_ne!(mutated, fields.text, "mutation must remove the column line");
    fields.text = mutated;
    let findings = audit(&files);
    assert!(
        findings
            .iter()
            .any(|f| f.lint == "timeline-schema" && f.message.contains("nvm_bank_queue")),
        "dropping a timeline_fields column must trip timeline-schema: {findings:?}"
    );
}

#[test]
fn adding_a_hashmap_to_a_sim_crate_fails_the_audit() {
    let mut files = ddp_audit::load_workspace(workspace_root()).expect("workspace walk");
    files.push(SourceFile::new(
        "crates/mem/src/sneaky.rs",
        "use std::collections::HashMap;\npub fn cache() -> HashMap<u64, u64> { HashMap::new() }\n",
    ));
    let findings = audit(&files);
    assert!(
        findings
            .iter()
            .any(|f| f.lint == "hash-collections" && f.path == "crates/mem/src/sneaky.rs"),
        "a bare HashMap in a sim crate must trip hash-collections: {findings:?}"
    );
}

// ---------------------------------------------------------------------
// Lint-table hygiene.
// ---------------------------------------------------------------------

#[test]
fn lint_table_names_are_unique_and_resolvable() {
    let mut names: Vec<&str> = LINTS.iter().map(|l| l.name).collect();
    names.sort_unstable();
    names.dedup();
    assert_eq!(names.len(), LINTS.len(), "duplicate lint name");
    for l in LINTS {
        assert!(lint_spec(l.name).is_some());
        assert!(!l.summary.is_empty());
    }
}
