//! Determinism and cross-cutting property tests over the full stack.

use ddp_core::{ClusterConfig, Consistency, DdpModel, Persistency, Simulation};
use proptest::prelude::*;

fn model_from(c_idx: usize, p_idx: usize) -> DdpModel {
    DdpModel::new(Consistency::ALL[c_idx], Persistency::ALL[p_idx])
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Any model, any seed, any (small) client count: the run terminates and
    /// produces sane statistics.
    #[test]
    fn any_configuration_terminates(
        c_idx in 0usize..5,
        p_idx in 0usize..5,
        seed in 0u64..1_000,
        clients in 2u32..30,
    ) {
        let mut cfg = ClusterConfig::micro21(model_from(c_idx, p_idx))
            .with_seed(seed)
            .with_clients(clients);
        cfg.warmup_requests = 20;
        cfg.measured_requests = 300;
        let mut sim = Simulation::new(cfg);
        let report = sim.run();
        prop_assert!(report.summary.throughput > 0.0);
        let stats = sim.cluster().stats();
        prop_assert_eq!(
            stats.reads_completed + stats.writes_completed,
            300,
            "measured-request accounting drifted"
        );
        prop_assert!(stats.read_latency.count() == stats.reads_completed);
        prop_assert!(stats.write_latency.count() == stats.writes_completed);
    }

    /// Bit-for-bit reproducibility for arbitrary seeds and models.
    #[test]
    fn same_seed_same_everything(
        c_idx in 0usize..5,
        p_idx in 0usize..5,
        seed in 0u64..1_000,
    ) {
        let make = || {
            let mut cfg = ClusterConfig::micro21(model_from(c_idx, p_idx)).with_seed(seed);
            cfg.warmup_requests = 20;
            cfg.measured_requests = 200;
            let mut sim = Simulation::new(cfg);
            let summary = sim.run().summary;
            let bytes = sim.cluster().stats().network_bytes;
            (summary, bytes)
        };
        let (a, ab) = make();
        let (b, bb) = make();
        prop_assert_eq!(a, b);
        prop_assert_eq!(ab, bb);
    }

    /// Fault injection is part of the deterministic event stream: the same
    /// fault plan and seeds reproduce the summary, the fault counters, and
    /// the crash/rejoin trace bit for bit.
    #[test]
    fn same_fault_plan_same_everything(
        c_idx in 0usize..5,
        p_idx in 0usize..5,
        seed in 0u64..1_000,
        fault_seed in 0u64..1_000,
    ) {
        let make = || {
            let mut cfg = ClusterConfig::micro21(model_from(c_idx, p_idx))
                .with_seed(seed)
                .with_loss(0.02)
                .with_crash(
                    1,
                    ddp_sim::Duration::from_micros(30),
                    ddp_sim::Duration::from_micros(40),
                );
            cfg.faults.fault_seed = fault_seed;
            cfg.warmup_requests = 20;
            cfg.measured_requests = 300;
            let mut sim = Simulation::new(cfg);
            let summary = sim.run().summary;
            let st = sim.cluster().stats();
            (
                summary,
                st.duplicates_suppressed,
                st.transient_expirations,
                st.catchup_keys,
                st.crashes.clone(),
                st.rejoins.clone(),
            )
        };
        prop_assert_eq!(make(), make());
    }

    /// Version numbers returned by reads never exceed the number of writes
    /// issued (a cheap global sanity invariant on the version allocator).
    #[test]
    fn read_versions_are_allocated_versions(seed in 0u64..500) {
        let mut cfg = ClusterConfig::micro21(DdpModel::new(
            Consistency::Eventual,
            Persistency::Eventual,
        ))
        .with_seed(seed)
        .with_observations();
        cfg.warmup_requests = 0;
        cfg.measured_requests = 400;
        let mut sim = Simulation::new(cfg);
        sim.run();
        let log = sim.cluster().observations();
        let max_written = log.writes.iter().map(|w| w.version).max().unwrap_or(0);
        for r in &log.reads {
            // A read may see a version the log hasn't recorded yet (its
            // write is still unacknowledged), so bound loosely by the
            // total writes issued plus in-flight margin.
            prop_assert!(r.version <= max_written + 10_000);
        }
    }
}

#[test]
fn observation_log_is_ordered_by_completion() {
    let mut cfg = ClusterConfig::micro21(DdpModel::baseline()).with_observations();
    cfg.warmup_requests = 0;
    cfg.measured_requests = 1_000;
    let mut sim = Simulation::new(cfg);
    sim.run();
    let log = sim.cluster().observations();
    assert!(!log.reads.is_empty() && !log.writes.is_empty());
    // Entries are appended when the protocol settles an operation, which may
    // be a few hundred nanoseconds before the response timestamp; ordering
    // therefore holds up to that small slack.
    const SLACK_NS: u64 = 2_000;
    assert!(
        log.reads
            .windows(2)
            .all(|w| { w[1].completed_at.as_nanos() + SLACK_NS >= w[0].completed_at.as_nanos() }),
        "reads logged far out of completion order"
    );
    assert!(
        log.writes
            .windows(2)
            .all(|w| { w[1].completed_at.as_nanos() + SLACK_NS >= w[0].completed_at.as_nanos() }),
        "writes logged far out of completion order"
    );
}
