//! Integration tests of the tracing subsystem: the tracer must be
//! read-only (a traced run reports byte-identical results to an untraced
//! run of the same config), trace streams must be deterministic across
//! executor thread counts, and the stream must actually carry the VP/DP
//! lifecycle the paper's argument is built on.

use ddp_core::{ClusterConfig, DdpModel, Simulation, TraceConfig, TraceEventKind};
use ddp_harness::{run_sweep_traced, trace_event_to_json, Sweep};
use ddp_sim::Duration;

fn quick_cfg(model: DdpModel) -> ClusterConfig {
    let mut cfg = ClusterConfig::micro21(model).quick();
    cfg.warmup_requests = 30;
    cfg.measured_requests = 400;
    cfg
}

fn traced(cfg: ClusterConfig) -> ClusterConfig {
    cfg.with_trace(TraceConfig::enabled().with_sample_interval(Duration::from_micros(5)))
}

#[test]
fn traced_and_untraced_runs_report_byte_identical_summaries() {
    for model in DdpModel::all() {
        let plain = Simulation::new(quick_cfg(model)).run().summary;
        let observed = Simulation::new(traced(quick_cfg(model))).run().summary;
        // RunSummary is PartialEq over every field, floats included: the
        // tracer being read-only means equality bit for bit, not
        // approximately.
        assert_eq!(plain, observed, "{model}: tracing perturbed the run");
    }
}

#[test]
fn trace_streams_are_bit_identical_across_thread_counts() {
    let sweep = || Sweep::grid25(|m| traced(quick_cfg(m)));
    let sequential = run_sweep_traced("trace-seq", sweep(), 1);
    let parallel = run_sweep_traced("trace-par", sweep(), 4);
    assert_eq!(sequential.len(), parallel.len());
    for ((seq_rec, seq_dump), (par_rec, par_dump)) in sequential.iter().zip(&parallel) {
        assert_eq!(seq_rec, par_rec);
        // TraceDump is Eq: every record, in order, including drop counts.
        assert_eq!(seq_dump, par_dump, "{} trace diverged", seq_rec.model);
        // And the serialized stream matches byte for byte.
        let (seq_dump, par_dump) = (seq_dump.as_ref().unwrap(), par_dump.as_ref().unwrap());
        for (a, b) in seq_dump.events.iter().zip(&par_dump.events) {
            assert_eq!(
                trace_event_to_json(seq_rec.index, a),
                trace_event_to_json(par_rec.index, b)
            );
        }
    }
}

#[test]
fn every_completed_write_has_vp_and_dp_events() {
    // Under <Linearizable, Synchronous> a write acks only after its
    // persist, so every completed write's VP and DP must both be in the
    // stream (ring sized well above the run's event count).
    let mut sim = Simulation::new(traced(quick_cfg(DdpModel::baseline())));
    sim.run();
    let dump = sim.take_trace().expect("tracing was enabled");
    assert_eq!(dump.dropped, 0, "ring must hold the full quick run");

    let versions = |kind: TraceEventKind| -> Vec<u64> {
        let mut v: Vec<u64> = dump
            .events
            .iter()
            .filter(|e| e.kind == kind)
            .map(|e| e.b)
            .collect();
        v.sort_unstable();
        v.dedup();
        v
    };
    let completed = versions(TraceEventKind::WriteComplete);
    let vps = versions(TraceEventKind::WriteVp);
    let dps = versions(TraceEventKind::WriteDp);
    assert!(!completed.is_empty(), "the run completed no writes");
    for v in &completed {
        assert!(
            vps.binary_search(v).is_ok(),
            "version {v} completed without a VP event"
        );
        assert!(
            dps.binary_search(v).is_ok(),
            "version {v} completed without a DP event"
        );
    }

    // VP precedes DP for every version, and the recorded lag matches the
    // timestamps.
    for dp in dump
        .events
        .iter()
        .filter(|e| e.kind == TraceEventKind::WriteDp)
    {
        let vp = dump
            .events
            .iter()
            .find(|e| e.kind == TraceEventKind::WriteVp && e.b == dp.b)
            .expect("every DP has a VP");
        assert!(vp.at_ns <= dp.at_ns, "version {} DP before VP", dp.b);
        assert_eq!(dp.c, dp.at_ns - vp.at_ns, "version {} lag mismatch", dp.b);
    }
}

#[test]
fn gauge_samples_land_on_interval_boundaries() {
    let interval = Duration::from_micros(5);
    let mut sim = Simulation::new(
        quick_cfg(DdpModel::baseline())
            .with_trace(TraceConfig::enabled().with_sample_interval(interval)),
    );
    sim.run();
    let dump = sim.take_trace().expect("tracing was enabled");
    let samples: Vec<_> = dump
        .events
        .iter()
        .filter(|e| e.kind == TraceEventKind::Sample)
        .collect();
    assert!(
        !samples.is_empty(),
        "a quick run spans several sample intervals"
    );
    for (i, s) in samples.iter().enumerate() {
        assert_eq!(
            s.at_ns,
            (i as u64 + 1) * interval.as_nanos(),
            "samples must land exactly on interval boundaries"
        );
    }
}
