//! Open-loop overload integration tests: determinism across executor
//! thread counts, low-rate sanity against the closed loop, shed/retry
//! conservation, and the guarantee that closed-loop runs are untouched.

use ddp_core::{
    ClusterConfig, Consistency, DdpModel, OpenLoopPlan, Persistency, RunReport, Simulation,
};
use ddp_harness::{run_sweep_named, Sweep};
use ddp_sim::Duration;

fn open_cfg(model: DdpModel, offered: f64) -> ClusterConfig {
    let mut cfg = ClusterConfig::micro21(model).with_open_loop(OpenLoopPlan::poisson(offered));
    cfg.warmup_requests = 100;
    cfg.measured_requests = 1_500;
    cfg
}

#[test]
fn open_loop_grid_is_bit_identical_across_thread_counts() {
    let sweep = |threads| {
        run_sweep_named(
            "overload-determinism",
            Sweep::grid25(|m| open_cfg(m, 2_000_000.0)),
            threads,
        )
    };
    let serial = sweep(1);
    let parallel = sweep(4);
    assert_eq!(serial.len(), 25);
    for (a, b) in serial.iter().zip(&parallel) {
        assert_eq!(
            a.summary, b.summary,
            "model {} diverged across thread counts",
            a.label
        );
        assert_eq!(
            a.counters, b.counters,
            "model {} counters diverged",
            a.label
        );
    }
}

#[test]
fn open_loop_runs_are_deterministic_per_seed() {
    let model = DdpModel::new(Consistency::Causal, Persistency::Synchronous);
    let run = || Simulation::new(open_cfg(model, 3_000_000.0)).run();
    let a: RunReport = run();
    let b: RunReport = run();
    assert_eq!(a.summary, b.summary);

    let mut other = Simulation::new(open_cfg(model, 3_000_000.0).with_seed(7));
    assert_ne!(a.summary, other.run().summary);
}

#[test]
fn low_rate_open_loop_matches_offered_load_and_sheds_nothing() {
    // Far below capacity: goodput tracks offered load and nothing queues
    // long or gets shed.
    let model = DdpModel::new(Consistency::Eventual, Persistency::Eventual);
    let offered = 500_000.0;
    let mut sim = Simulation::new(open_cfg(model, offered));
    let report = sim.run();
    let s = report.summary;
    assert!(s.shed_rate == 0.0, "shed {} below capacity", s.shed_rate);
    assert_eq!(s.ol_retries, 0, "retries below capacity");
    let ratio = s.throughput / s.offered_per_sec;
    assert!(
        (0.85..=1.15).contains(&ratio),
        "goodput {} vs offered {} (ratio {ratio})",
        s.throughput,
        s.offered_per_sec
    );
    // Mean latency should be close to the unloaded closed-loop latency:
    // no queueing to speak of.
    assert!(
        s.mean_admission_queue < 1.0,
        "queue {}",
        s.mean_admission_queue
    );
}

#[test]
fn arrival_conservation_holds_at_run_end() {
    // issued = completed + shed + queued + retry-pending + in-flight, for
    // a mix of under- and over-loaded runs, bounded and unbounded queues.
    let model = DdpModel::new(Consistency::Linearizable, Persistency::Strict);
    for (offered, cap) in [
        (500_000.0, Some(8)),
        (20_000_000.0, Some(8)),
        (20_000_000.0, None),
    ] {
        let mut cfg = open_cfg(model, offered);
        cfg.open_loop = Some(
            OpenLoopPlan::poisson(offered)
                .with_queue_capacity(cap)
                .with_retries(2),
        );
        let mut sim = Simulation::new(cfg);
        sim.run();
        let acct = sim
            .cluster()
            .open_loop_accounting()
            .expect("open-loop run must expose accounting");
        assert_eq!(
            acct.arrivals,
            acct.completed_sessions + acct.shed + acct.queued + acct.retry_pending + acct.in_flight,
            "conservation violated at offered={offered} cap={cap:?}: {acct:?}"
        );
        assert!(acct.arrivals > 0);
    }
}

#[test]
fn overload_sheds_with_bounded_queue_but_not_unbounded() {
    // Far above capacity: a bounded queue with a finite retry budget must
    // shed; an unbounded queue must never shed (it pays in latency instead).
    let model = DdpModel::new(Consistency::Linearizable, Persistency::Strict);
    let offered = 30_000_000.0;

    let mut bounded_cfg = open_cfg(model, offered);
    // A longer window lets the unbounded backlog (which grows with run
    // length) separate clearly from the bounded configuration's flat tail.
    bounded_cfg.measured_requests = 4_000;
    bounded_cfg.open_loop = Some(
        OpenLoopPlan::poisson(offered)
            .with_queue_capacity(Some(16))
            .with_retries(2),
    );
    let bounded = Simulation::new(bounded_cfg).run().summary;
    assert!(
        bounded.shed_rate > 0.1,
        "bounded queue shed only {}",
        bounded.shed_rate
    );

    let mut unbounded_cfg = open_cfg(model, offered);
    unbounded_cfg.measured_requests = 4_000;
    unbounded_cfg.open_loop = Some(
        OpenLoopPlan::poisson(offered)
            .with_queue_capacity(None)
            .with_retries(0),
    );
    let unbounded = Simulation::new(unbounded_cfg).run().summary;
    assert_eq!(unbounded.shed_rate, 0.0);
    assert_eq!(unbounded.ol_shed, 0);
    // The unbounded queue grows past anything the bounded config allows.
    assert!(
        unbounded.max_admission_queue > bounded.max_admission_queue,
        "unbounded peak {} <= bounded peak {}",
        unbounded.max_admission_queue,
        bounded.max_admission_queue
    );
    // And its tail latency diverges: queue wait is counted against the
    // request, so p999 write latency dwarfs the shedding configuration's.
    assert!(
        unbounded.p999_write_ns > 2.0 * bounded.p999_write_ns,
        "unbounded p999 {} vs bounded {}",
        unbounded.p999_write_ns,
        bounded.p999_write_ns
    );
}

#[test]
fn open_loop_composes_with_faults() {
    // Overload + lossy fabric + a mid-run crash in one run: the session
    // machinery and the fault machinery share the issue path, so this is
    // the integration that keeps them compatible.
    let model = DdpModel::new(Consistency::Causal, Persistency::Synchronous);
    let mut cfg = open_cfg(model, 5_000_000.0).with_loss(0.01).with_crash(
        2,
        Duration::from_micros(100),
        Duration::from_micros(60),
    );
    cfg.measured_requests = 1_000;
    let mut sim = Simulation::new(cfg);
    let report = sim.run();
    assert!(report.summary.throughput > 0.0);
    let acct = sim.cluster().open_loop_accounting().expect("open loop");
    assert_eq!(
        acct.arrivals,
        acct.completed_sessions + acct.shed + acct.queued + acct.retry_pending + acct.in_flight,
        "conservation violated under faults: {acct:?}"
    );
}

#[test]
fn sessions_span_whole_transactions_and_scopes() {
    // Transactional consistency: one arrival = one whole transaction, so
    // completed requests are a multiple-ish of txn_size times sessions.
    let model = DdpModel::new(Consistency::Transactional, Persistency::Synchronous);
    let mut sim = Simulation::new(open_cfg(model, 1_000_000.0));
    let report = sim.run();
    assert!(report.summary.throughput > 0.0);
    let acct = sim.cluster().open_loop_accounting().expect("open loop");
    let completed = sim.cluster().stats().completed() + sim.cluster().config().warmup_requests;
    // Each completed session contributed at least txn_size requests
    // (wounded retries can add more); allow generous slack.
    assert!(
        completed >= acct.completed_sessions * 4,
        "sessions {} vs completed requests {completed}: transactions are not grouped",
        acct.completed_sessions
    );

    // Scope persistency: sessions must also be conserved when the Persist
    // detour extends them.
    let model = DdpModel::new(Consistency::Linearizable, Persistency::Scope);
    let mut sim = Simulation::new(open_cfg(model, 1_000_000.0));
    sim.run();
    let acct = sim.cluster().open_loop_accounting().expect("open loop");
    assert_eq!(
        acct.arrivals,
        acct.completed_sessions + acct.shed + acct.queued + acct.retry_pending + acct.in_flight,
        "scope conservation violated: {acct:?}"
    );
}

#[test]
fn closed_loop_stats_report_inert_open_loop_fields() {
    let model = DdpModel::new(Consistency::Causal, Persistency::Synchronous);
    let mut cfg = ClusterConfig::micro21(model);
    cfg.warmup_requests = 100;
    cfg.measured_requests = 1_000;
    let mut sim = Simulation::new(cfg);
    let s = sim.run().summary;
    assert!(sim.cluster().open_loop_accounting().is_none());
    assert_eq!(s.offered_per_sec, 0.0);
    assert_eq!(s.shed_rate, 0.0);
    assert_eq!(s.ol_retries, 0);
    assert_eq!(s.ol_shed, 0);
    assert_eq!(s.max_admission_queue, 0);
}
