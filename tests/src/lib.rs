//! Integration-test crate; tests live under tests/tests.
