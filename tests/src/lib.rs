//! Integration-test crate; tests live under tests/tests.

#![forbid(unsafe_code)]
