//! Offline stand-in for the `criterion` crate.
//!
//! The build environment has no network access, so the real `criterion`
//! cannot be fetched. This shim implements the API subset used by the
//! workspace's `harness = false` benches — `Criterion::bench_function`,
//! `benchmark_group`, `Bencher::iter`/`iter_batched`, `BatchSize`, and the
//! `criterion_group!`/`criterion_main!` macros — with a simple wall-clock
//! measurement loop that prints mean ns/iter per benchmark. No statistics,
//! plots, or baselines; results are indicative, not rigorous.

#![forbid(unsafe_code)]
// Timing real benchmark runs is this shim's entire purpose, so the
// workspace-wide wall-clock ban (clippy.toml disallowed-methods, mirrored
// from ddp-audit, which exempts the shim class) does not apply here.
#![allow(clippy::disallowed_methods)]
use std::time::{Duration, Instant};

/// Target wall-clock time spent measuring each benchmark.
const MEASURE_BUDGET: Duration = Duration::from_millis(300);

/// Re-export of `std::hint::black_box` under criterion's name.
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// Batch sizing hint for [`Bencher::iter_batched`]; the shim ignores it.
#[derive(Clone, Copy, Debug)]
pub enum BatchSize {
    /// Small per-iteration input.
    SmallInput,
    /// Larger per-iteration input.
    LargeInput,
    /// Input of unpredictable size.
    PerIteration,
}

/// The benchmark driver handed to `criterion_group!` targets.
#[derive(Debug, Default)]
pub struct Criterion {
    _private: (),
}

impl Criterion {
    /// Chainable no-op kept for `configure_from_args()` call sites.
    #[must_use]
    pub fn configure_from_args(self) -> Self {
        self
    }

    /// Runs `f` as a named benchmark and prints its mean time.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, name: &str, mut f: F) -> &mut Self {
        run_one(name, &mut f);
        self
    }

    /// Starts a named group of benchmarks.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            _parent: self,
            name: name.to_string(),
        }
    }
}

/// A named collection of benchmarks; the shim only uses it for prefixing.
pub struct BenchmarkGroup<'a> {
    _parent: &'a mut Criterion,
    name: String,
}

impl BenchmarkGroup<'_> {
    /// Sample-count hint; the shim's fixed time budget ignores it.
    pub fn sample_size(&mut self, _n: usize) -> &mut Self {
        self
    }

    /// Measurement-time hint; the shim's fixed time budget ignores it.
    pub fn measurement_time(&mut self, _d: Duration) -> &mut Self {
        self
    }

    /// Runs `f` as `group/name` and prints its mean time.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, name: &str, mut f: F) -> &mut Self {
        run_one(&format!("{}/{}", self.name, name), &mut f);
        self
    }

    /// Ends the group (no-op).
    pub fn finish(self) {}
}

/// Passed to benchmark closures; collects the timed iterations.
#[derive(Debug, Default)]
pub struct Bencher {
    iters: u64,
    elapsed: Duration,
}

impl Bencher {
    /// Times repeated calls of `routine`.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        // One untimed warmup to page code in and size the loop.
        let start = Instant::now();
        black_box(routine());
        let once = start.elapsed().max(Duration::from_nanos(1));
        let per_batch = (MEASURE_BUDGET.as_nanos() / once.as_nanos()).clamp(1, 10_000) as u64;
        let start = Instant::now();
        for _ in 0..per_batch {
            black_box(routine());
        }
        self.elapsed += start.elapsed();
        self.iters += per_batch;
    }

    /// Times `routine` over fresh inputs built by `setup` (setup untimed).
    pub fn iter_batched<I, O, S, R>(&mut self, mut setup: S, mut routine: R, _size: BatchSize)
    where
        S: FnMut() -> I,
        R: FnMut(I) -> O,
    {
        let input = setup();
        let start = Instant::now();
        black_box(routine(input));
        let once = start.elapsed().max(Duration::from_nanos(1));
        let per_batch = (MEASURE_BUDGET.as_nanos() / once.as_nanos()).clamp(1, 10_000) as u64;
        let inputs: Vec<I> = (0..per_batch).map(|_| setup()).collect();
        let start = Instant::now();
        for input in inputs {
            black_box(routine(input));
        }
        self.elapsed += start.elapsed();
        self.iters += per_batch;
    }
}

fn run_one(name: &str, f: &mut dyn FnMut(&mut Bencher)) {
    let mut b = Bencher::default();
    f(&mut b);
    let per_iter = if b.iters == 0 {
        0
    } else {
        b.elapsed.as_nanos() / u128::from(b.iters)
    };
    println!("{name:<40} {per_iter:>12} ns/iter ({} iters)", b.iters);
}

/// Declares a function running each benchmark target in order.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut c = $crate::Criterion::default().configure_from_args();
            $($target(&mut c);)+
        }
    };
}

/// Declares `main` for a `harness = false` bench binary.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_function_runs_closure() {
        let mut c = Criterion::default();
        let mut ran = false;
        c.bench_function("shim/self_test", |b| {
            b.iter(|| 1 + 1);
            ran = true;
        });
        assert!(ran);
    }

    #[test]
    fn group_api_compiles_and_runs() {
        let mut c = Criterion::default();
        let mut group = c.benchmark_group("g");
        group.sample_size(10);
        group.bench_function("batched", |b| {
            b.iter_batched(|| vec![1u8; 8], |v| v.len(), BatchSize::SmallInput);
        });
        group.finish();
    }
}
