//! Offline stand-in for the `proptest` crate.
//!
//! The build environment has no network access and no vendored registry, so
//! the real `proptest` cannot be fetched. This shim implements the subset of
//! its API that the workspace's property tests use — `proptest!`,
//! `prop_assert!`/`prop_assert_eq!`, `prop_oneof!`, `Strategy` with
//! `prop_map`, integer-range and tuple strategies, `any::<T>()`, and
//! `prop::collection::vec` — on top of a small deterministic RNG. Cases are
//! seeded from the test name, so failures reproduce exactly across runs.
//!
//! Shrinking is intentionally not implemented: a failing case panics with the
//! sampled inputs' `Debug` output instead.

#![forbid(unsafe_code)]
/// Deterministic splitmix64 generator driving all sampling.
#[derive(Clone, Debug)]
pub struct TestRng(u64);

impl TestRng {
    /// Creates a generator from a 64-bit seed.
    #[must_use]
    pub fn seed(seed: u64) -> Self {
        TestRng(seed)
    }

    /// Next raw 64-bit draw.
    pub fn next_u64(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform draw in `[0, bound)`; `bound` must be nonzero.
    pub fn below(&mut self, bound: u64) -> u64 {
        debug_assert!(bound > 0);
        self.next_u64() % bound
    }
}

/// Hashes a test name into a stable per-test seed (FNV-1a).
#[must_use]
pub fn seed_for(name: &str) -> u64 {
    let mut h = 0xCBF2_9CE4_8422_2325u64;
    for b in name.as_bytes() {
        h ^= u64::from(*b);
        h = h.wrapping_mul(0x0000_0100_0000_01B3);
    }
    h
}

/// Run-count configuration, mirroring `proptest::test_runner::Config`.
#[derive(Clone, Debug)]
pub struct ProptestConfig {
    /// Number of random cases each test executes.
    pub cases: u32,
}

impl ProptestConfig {
    /// A config running `cases` random cases.
    #[must_use]
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 64 }
    }
}

/// A source of random values of one type.
pub trait Strategy {
    /// The type of value this strategy produces.
    type Value;

    /// Draws one value.
    fn sample(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps sampled values through `f`.
    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { inner: self, f }
    }

    /// Type-erases the strategy (used by `prop_oneof!`).
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        BoxedStrategy(Box::new(self))
    }
}

/// Object-safe sampling, backing [`BoxedStrategy`].
trait DynStrategy<V> {
    fn sample_dyn(&self, rng: &mut TestRng) -> V;
}

impl<S: Strategy> DynStrategy<S::Value> for S {
    fn sample_dyn(&self, rng: &mut TestRng) -> S::Value {
        self.sample(rng)
    }
}

/// A type-erased strategy.
pub struct BoxedStrategy<V>(Box<dyn DynStrategy<V>>);

impl<V> Strategy for BoxedStrategy<V> {
    type Value = V;
    fn sample(&self, rng: &mut TestRng) -> V {
        self.0.sample_dyn(rng)
    }
}

/// Strategy adapter produced by [`Strategy::prop_map`].
#[derive(Clone)]
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S, O, F> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> O,
{
    type Value = O;
    fn sample(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.sample(rng))
    }
}

/// Uniform choice among same-valued strategies (`prop_oneof!`).
pub struct Union<V>(pub Vec<BoxedStrategy<V>>);

impl<V> Strategy for Union<V> {
    type Value = V;
    fn sample(&self, rng: &mut TestRng) -> V {
        let idx = rng.below(self.0.len() as u64) as usize;
        self.0[idx].sample(rng)
    }
}

/// Integers samplable from a half-open range.
pub trait SampleRange: Copy {
    /// Widens to `u64` for uniform sampling.
    fn to_u64(self) -> u64;
    /// Narrows back after sampling.
    fn from_u64(v: u64) -> Self;
}

macro_rules! impl_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange for $t {
            fn to_u64(self) -> u64 {
                self as u64
            }
            fn from_u64(v: u64) -> Self {
                v as $t
            }
        }
    )*};
}

impl_sample_range!(u8, u16, u32, u64, usize);

impl<T: SampleRange> Strategy for std::ops::Range<T> {
    type Value = T;
    fn sample(&self, rng: &mut TestRng) -> T {
        let lo = self.start.to_u64();
        let hi = self.end.to_u64();
        assert!(hi > lo, "empty range strategy");
        T::from_u64(lo + rng.below(hi - lo))
    }
}

impl<A: Strategy, B: Strategy> Strategy for (A, B) {
    type Value = (A::Value, B::Value);
    fn sample(&self, rng: &mut TestRng) -> Self::Value {
        (self.0.sample(rng), self.1.sample(rng))
    }
}

impl<A: Strategy, B: Strategy, C: Strategy> Strategy for (A, B, C) {
    type Value = (A::Value, B::Value, C::Value);
    fn sample(&self, rng: &mut TestRng) -> Self::Value {
        (self.0.sample(rng), self.1.sample(rng), self.2.sample(rng))
    }
}

/// Always produces a clone of one value.
#[derive(Clone, Debug)]
pub struct Just<V>(pub V);

impl<V: Clone> Strategy for Just<V> {
    type Value = V;
    fn sample(&self, _rng: &mut TestRng) -> V {
        self.0.clone()
    }
}

/// Types with a canonical full-domain strategy (`any::<T>()`).
pub trait Arbitrary: Sized {
    /// Draws an arbitrary value of the type.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

macro_rules! impl_arbitrary_int {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}

impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> Self {
        rng.next_u64() & 1 == 1
    }
}

/// Strategy over the whole domain of `T`.
#[derive(Clone, Copy, Debug, Default)]
pub struct Any<T>(std::marker::PhantomData<T>);

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;
    fn sample(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

/// The full-domain strategy for `T` (proptest's `any::<T>()`).
#[must_use]
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(std::marker::PhantomData)
}

/// Collection strategies (`prop::collection`).
pub mod collection {
    use super::{Strategy, TestRng};

    /// Element-count specification: an exact size or a half-open range.
    #[derive(Clone, Copy, Debug)]
    pub struct SizeRange {
        lo: usize,
        hi: usize,
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            SizeRange { lo: n, hi: n + 1 }
        }
    }

    impl From<std::ops::Range<usize>> for SizeRange {
        fn from(r: std::ops::Range<usize>) -> Self {
            assert!(r.end > r.start, "empty vec size range");
            SizeRange {
                lo: r.start,
                hi: r.end,
            }
        }
    }

    /// Strategy producing `Vec`s of `element` with a size drawn from `size`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }

    /// Strategy type returned by [`vec`].
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn sample(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let span = (self.size.hi - self.size.lo) as u64;
            let len = self.size.lo
                + if span == 0 {
                    0
                } else {
                    rng.below(span) as usize
                };
            (0..len).map(|_| self.element.sample(rng)).collect()
        }
    }
}

/// Everything a property test file needs, mirroring `proptest::prelude`.
pub mod prelude {
    pub use crate as prop;
    pub use crate::{any, Arbitrary, BoxedStrategy, Just, ProptestConfig, Strategy};
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest};
}

/// Defines `#[test]` functions that run their body over many random samples.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::proptest!(@cfg ($cfg); $($rest)*);
    };
    (@cfg ($cfg:expr); $($(#[$meta:meta])* fn $name:ident($($arg:pat_param in $strat:expr),+ $(,)?) $body:block)*) => {
        $(
            $(#[$meta])*
            fn $name() {
                let config: $crate::ProptestConfig = $cfg;
                let seed = $crate::seed_for(concat!(module_path!(), "::", stringify!($name)));
                for case in 0..u64::from(config.cases) {
                    let mut rng = $crate::TestRng::seed(seed ^ case.wrapping_mul(0xA076_1D64_78BD_642F));
                    $(let $arg = $crate::Strategy::sample(&($strat), &mut rng);)+
                    $body
                }
            }
        )*
    };
    ($($rest:tt)*) => {
        $crate::proptest!(@cfg ($crate::ProptestConfig::default()); $($rest)*);
    };
}

/// `assert!` under proptest's spelling.
#[macro_export]
macro_rules! prop_assert {
    ($($tt:tt)*) => { assert!($($tt)*) };
}

/// `assert_eq!` under proptest's spelling.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($tt:tt)*) => { assert_eq!($($tt)*) };
}

/// `assert_ne!` under proptest's spelling.
#[macro_export]
macro_rules! prop_assert_ne {
    ($($tt:tt)*) => { assert_ne!($($tt)*) };
}

/// Uniformly picks one of several strategies producing the same value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($strat:expr),+ $(,)?) => {
        $crate::Union(vec![$($crate::Strategy::boxed($strat)),+])
    };
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn ranges_stay_in_bounds(x in 3u64..17, y in 0usize..4) {
            prop_assert!((3..17).contains(&x));
            prop_assert!(y < 4);
        }

        #[test]
        fn vec_sizes_respect_spec(
            exact in prop::collection::vec(0u32..5, 7),
            ranged in prop::collection::vec(any::<u64>(), 1..4),
        ) {
            prop_assert_eq!(exact.len(), 7);
            prop_assert!((1..4).contains(&ranged.len()));
        }

        #[test]
        fn oneof_and_map_compose(v in prop_oneof![
            (0u64..10).prop_map(|x| x * 2),
            (100u64..110).prop_map(|x| x + 1),
        ]) {
            prop_assert!(v.is_multiple_of(2) && v < 20 || (101..111).contains(&v));
        }
    }

    #[test]
    fn same_name_same_samples() {
        let mut a = super::TestRng::seed(super::seed_for("x"));
        let mut b = super::TestRng::seed(super::seed_for("x"));
        assert_eq!(a.next_u64(), b.next_u64());
    }
}
